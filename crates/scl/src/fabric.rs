//! The fabric: endpoint registry + virtual-time message delivery.
//!
//! [`Fabric::send`] is the single point where communication cost is charged:
//! it looks up the route between the source and destination nodes, computes
//! the transfer time for the declared wire size, stamps the envelope with
//! `deliver_at = now + transfer`, and pushes it onto the destination's
//! unbounded channel. Physical delivery is immediate; *virtual* delivery is
//! what the receiver's clock advances to.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{self, Sender};
use parking_lot::RwLock;
use samhita_sched::TaskRef;

use crate::endpoint::{Endpoint, Envelope};
use crate::error::SclError;
use crate::fault::{FaultPlan, SendFate};
use crate::stats::{FabricStats, FabricStatsSnapshot, MsgClass};
use crate::time::SimTime;
use crate::topology::{EndpointId, NodeId, Topology};

struct Slot<M> {
    tx: Sender<Envelope<M>>,
    node: NodeId,
    /// Per-source message sequence, feeding the fault plan's fate hash.
    /// Each endpoint is owned by exactly one component thread, so this
    /// sequence is deterministic across runs.
    seq: AtomicU64,
    /// Deterministic-scheduler task behind this endpoint, if its owner is
    /// cooperatively scheduled: every physical delivery then also posts a
    /// virtual wake-up at the envelope's delivery time.
    det_task: Option<TaskRef>,
}

/// Callback invoked on every [`Fabric::send`], for tracing. The final
/// argument is the injected-fault label ([`SendFate::label`]), `None` for a
/// cleanly delivered message.
pub type SendObserver = Box<
    dyn Fn(EndpointId, EndpointId, SimTime, usize, MsgClass, Option<&'static str>) + Send + Sync,
>;

/// The simulated interconnect connecting all DSM components.
pub struct Fabric<M> {
    topo: Topology,
    slots: RwLock<Vec<Slot<M>>>,
    stats: FabricStats,
    observer: RwLock<Option<SendObserver>>,
    fault: RwLock<FaultPlan>,
}

impl<M: Send + Clone + 'static> Fabric<M> {
    /// Create a fabric over the given topology.
    pub fn new(topo: Topology) -> Arc<Self> {
        Arc::new(Fabric {
            topo,
            slots: RwLock::new(Vec::new()),
            stats: FabricStats::default(),
            observer: RwLock::new(None),
            fault: RwLock::new(FaultPlan::none()),
        })
    }

    /// Attach a new endpoint on `node` and return its receiving half.
    ///
    /// # Panics
    /// Panics if `node` is not part of the topology.
    pub fn add_endpoint(self: &Arc<Self>, node: NodeId) -> Endpoint<M> {
        assert!(self.topo.node(node).is_some(), "placement on unknown node {node:?}");
        let (tx, rx) = channel::unbounded();
        let mut slots = self.slots.write();
        let id = EndpointId(slots.len() as u32);
        slots.push(Slot { tx, node, seq: AtomicU64::new(0), det_task: None });
        drop(slots);
        Endpoint::new(id, node, rx, Arc::clone(self))
    }

    /// Node an endpoint lives on.
    pub fn node_of(&self, ep: EndpointId) -> Option<NodeId> {
        self.slots.read().get(ep.0 as usize).map(|s| s.node)
    }

    /// Send `msg` from `src` (whose virtual clock reads `now`) to `dst`,
    /// declaring `wire_bytes` of payload on the wire. Returns the virtual
    /// delivery time at `dst`.
    ///
    /// The transfer cost is charged against the route between the endpoints'
    /// nodes; `wire_bytes` should be the *protocol* payload size (headers are
    /// covered by the per-message overhead term of the link model).
    pub fn send(
        &self,
        src: EndpointId,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<SimTime, SclError> {
        self.send_faulted(src, dst, now, wire_bytes, class, msg).map(|(t, _)| t)
    }

    /// [`Fabric::send`], additionally reporting the [`SendFate`] the fault
    /// plan chose. Senders that implement retransmission consult the fate
    /// (a dropped request is detected at send time, mirroring a virtual
    /// retransmission timeout); plain [`Fabric::send`] discards it.
    pub fn send_faulted(
        &self,
        src: EndpointId,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<(SimTime, SendFate), SclError> {
        let _prof = samhita_prof::enter(samhita_prof::Phase::ChannelSend);
        let slots = self.slots.read();
        let src_slot = slots.get(src.0 as usize).ok_or(SclError::UnknownEndpoint(src))?;
        let dst_slot = slots.get(dst.0 as usize).ok_or(SclError::UnknownEndpoint(dst))?;
        let route = self.topo.route(src_slot.node, dst_slot.node);
        let deliver_at = now + route.transfer_ns(wire_bytes);
        self.stats.record(class, wire_bytes);
        // The fate decision sits after all cost accounting, so an empty plan
        // leaves every charge bit-identical to a fault-free fabric.
        let fate = {
            let plan = self.fault.read();
            if plan.is_active() {
                let seq = src_slot.seq.fetch_add(1, Ordering::Relaxed);
                plan.fate(src, dst, src_slot.node, dst_slot.node, now, seq)
            } else {
                SendFate::Delivered
            }
        };
        if let Some(label) = fate.label() {
            self.stats.record_fault(class, label);
        }
        if let Some(observer) = self.observer.read().as_ref() {
            observer(src, dst, now, wire_bytes, class, fate.label());
        }
        let post = |deliver_at: SimTime, lost: bool, msg: M| {
            let env = Envelope { src, sent_at: now, deliver_at, lost, msg };
            dst_slot.tx.send(env).map_err(|_| SclError::Disconnected(dst))?;
            // Lost envelopes wake the receiver too: that is how its virtual
            // retransmission timeout fires without a wall-clock timer.
            if let Some(task) = &dst_slot.det_task {
                task.wake_at(deliver_at.as_ns());
            }
            Ok(())
        };
        match fate {
            SendFate::Delivered => post(deliver_at, false, msg)?,
            // Lost messages still travel physically, marked lost, so that a
            // receiver blocked on the channel wakes up and can fire its
            // *virtual* retransmission timeout deterministically.
            SendFate::Dropped(_) => post(deliver_at, true, msg)?,
            SendFate::Duplicated => {
                post(deliver_at, false, msg.clone())?;
                post(deliver_at, false, msg)?;
            }
            SendFate::Delayed(extra) => post(deliver_at + extra, false, msg)?,
        }
        Ok((deliver_at, fate))
    }

    /// [`Fabric::send`] bypassing fault injection entirely: used for system
    /// control traffic (shutdown) that must reach even a "crashed" endpoint
    /// — the crash is simulated, the OS thread behind it is real and must
    /// still be joined.
    pub fn send_reliable(
        &self,
        src: EndpointId,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<SimTime, SclError> {
        let slots = self.slots.read();
        let src_slot = slots.get(src.0 as usize).ok_or(SclError::UnknownEndpoint(src))?;
        let dst_slot = slots.get(dst.0 as usize).ok_or(SclError::UnknownEndpoint(dst))?;
        let route = self.topo.route(src_slot.node, dst_slot.node);
        let deliver_at = now + route.transfer_ns(wire_bytes);
        self.stats.record(class, wire_bytes);
        if let Some(observer) = self.observer.read().as_ref() {
            observer(src, dst, now, wire_bytes, class, None);
        }
        let env = Envelope { src, sent_at: now, deliver_at, lost: false, msg };
        dst_slot.tx.send(env).map_err(|_| SclError::Disconnected(dst))?;
        if let Some(task) = &dst_slot.det_task {
            task.wake_at(deliver_at.as_ns());
        }
        Ok(deliver_at)
    }

    /// Bind the deterministic-scheduler task that owns endpoint `ep`: every
    /// subsequent delivery to `ep` also posts a [`TaskRef::wake_at`] at the
    /// envelope's virtual delivery time. Installed once at bring-up, before
    /// any traffic targets the endpoint.
    pub fn bind_task(&self, ep: EndpointId, task: TaskRef) {
        let mut slots = self.slots.write();
        let slot = slots.get_mut(ep.0 as usize).expect("bind_task on unknown endpoint");
        slot.det_task = Some(task);
    }

    /// Install the fault plan consulted on every subsequent send. The
    /// default is [`FaultPlan::none`], under which `send_faulted` takes the
    /// exact same cost path as a fabric without fault injection.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault.write() = plan;
    }

    /// The topology this fabric simulates.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Snapshot traffic counters.
    pub fn stats(&self) -> FabricStatsSnapshot {
        self.stats.snapshot()
    }

    /// Install (or clear) an observer called on every send with
    /// `(src, dst, sent_at, wire_bytes, class, fault_label)`. Purely
    /// observational: the observer cannot alter delivery times or message
    /// contents, so tracing cannot perturb virtual clocks.
    pub fn set_observer(&self, observer: Option<SendObserver>) {
        *self.observer.write() = observer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn send_charges_route_cost() {
        let topo = Topology::cluster(2, profiles::ib_qdr());
        let fabric = Fabric::<&'static str>::new(topo);
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));

        let now = SimTime::from_us(5);
        let t = a.send(b.id(), now, 4096, MsgClass::Data, "page").unwrap();
        let expected = now + profiles::ib_qdr().transfer_ns(4096);
        assert_eq!(t, expected);

        let env = b.recv().unwrap();
        assert_eq!(env.msg, "page");
        assert_eq!(env.src, a.id());
        assert_eq!(env.sent_at, now);
        assert_eq!(env.deliver_at, expected);
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let topo = Topology::cluster(2, profiles::ib_qdr());
        let fabric = Fabric::<()>::new(topo);
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        let c = fabric.add_endpoint(NodeId(1));
        let t_local = a.send(b.id(), SimTime::ZERO, 1024, MsgClass::Data, ()).unwrap();
        let t_remote = a.send(c.id(), SimTime::ZERO, 1024, MsgClass::Data, ()).unwrap();
        assert!(t_local < t_remote);
    }

    #[test]
    fn unknown_endpoint_is_an_error() {
        let fabric = Fabric::<()>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let err = a.send(EndpointId(99), SimTime::ZERO, 0, MsgClass::Control, ());
        assert_eq!(err.unwrap_err(), SclError::UnknownEndpoint(EndpointId(99)));
    }

    #[test]
    fn disconnected_endpoint_is_an_error() {
        let fabric = Fabric::<()>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        let b_id = b.id();
        drop(b);
        let err = a.send(b_id, SimTime::ZERO, 0, MsgClass::Control, ());
        assert_eq!(err.unwrap_err(), SclError::Disconnected(b_id));
    }

    #[test]
    fn stats_accumulate_by_class() {
        let fabric = Fabric::<u8>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        a.send(b.id(), SimTime::ZERO, 100, MsgClass::Data, 1).unwrap();
        a.send(b.id(), SimTime::ZERO, 10, MsgClass::Sync, 2).unwrap();
        let s = fabric.stats();
        assert_eq!(s.msgs(MsgClass::Data), 1);
        assert_eq!(s.bytes(MsgClass::Data), 100);
        assert_eq!(s.msgs(MsgClass::Sync), 1);
    }

    #[test]
    fn endpoint_ids_are_dense() {
        let fabric = Fabric::<()>::new(Topology::single_node(4));
        let eps: Vec<_> = (0..5).map(|_| fabric.add_endpoint(NodeId(0))).collect();
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.id(), EndpointId(i as u32));
            assert_eq!(fabric.node_of(ep.id()), Some(NodeId(0)));
        }
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn placement_on_unknown_node_panics() {
        let fabric = Fabric::<()>::new(Topology::single_node(1));
        let _ = fabric.add_endpoint(NodeId(3));
    }

    #[test]
    fn observer_sees_sends_without_changing_delivery() {
        use std::sync::Mutex;
        let topo = Topology::cluster(2, profiles::ib_qdr());
        let fabric = Fabric::<&'static str>::new(topo);
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));
        type Seen = Vec<(EndpointId, EndpointId, u64, usize, MsgClass, Option<&'static str>)>;
        let seen: Arc<Mutex<Seen>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        fabric.set_observer(Some(Box::new(move |src, dst, now, bytes, class, fault| {
            sink.lock().unwrap().push((src, dst, now.as_ns(), bytes, class, fault));
        })));
        let t_observed = a.send(b.id(), SimTime::from_ns(7), 256, MsgClass::Update, "x").unwrap();
        fabric.set_observer(None);
        let t_plain = a.send(b.id(), SimTime::from_ns(7), 256, MsgClass::Update, "y").unwrap();
        assert_eq!(t_observed, t_plain, "observing a send must not change its cost");
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, vec![(a.id(), b.id(), 7, 256, MsgClass::Update, None)]);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let topo = Topology::cluster(2, profiles::ib_qdr());
        let fabric = Fabric::<u8>::new(topo);
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));
        fabric.set_fault_plan(crate::fault::FaultPlan::none());
        let now = SimTime::from_us(5);
        let (t, fate) = a.send_faulted(b.id(), now, 4096, MsgClass::Data, 1).unwrap();
        assert_eq!(fate, crate::fault::SendFate::Delivered);
        assert_eq!(t, now + profiles::ib_qdr().transfer_ns(4096));
        let env = b.recv().unwrap();
        assert!(!env.lost);
        assert_eq!(env.deliver_at, t);
        assert_eq!(fabric.stats().total_faults(), 0);
    }

    #[test]
    fn dropped_messages_travel_marked_lost_and_are_counted() {
        let fabric = Fabric::<u8>::new(Topology::cluster(2, profiles::ib_qdr()));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));
        fabric.set_fault_plan(crate::fault::FaultPlan::lossy(11, 1.0, 0.0, 0.0, SimTime::ZERO));
        let (t, fate) = a.send_faulted(b.id(), SimTime::ZERO, 64, MsgClass::Sync, 9).unwrap();
        assert!(fate.is_dropped());
        let env = b.recv().unwrap();
        assert!(env.lost, "a dropped message must still arrive physically, marked lost");
        assert_eq!(env.deliver_at, t);
        let s = fabric.stats();
        assert_eq!(s.drops(MsgClass::Sync), 1);
        assert_eq!(s.total_faults(), 1);
        // Cost accounting is charged whether or not the message survives.
        assert_eq!(s.msgs(MsgClass::Sync), 1);
    }

    #[test]
    fn duplicated_messages_arrive_twice_cleanly() {
        let fabric = Fabric::<u8>::new(Topology::cluster(2, profiles::ib_qdr()));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));
        fabric.set_fault_plan(crate::fault::FaultPlan::lossy(11, 0.0, 1.0, 0.0, SimTime::ZERO));
        let (t, fate) = a.send_faulted(b.id(), SimTime::ZERO, 64, MsgClass::Update, 3).unwrap();
        assert_eq!(fate, crate::fault::SendFate::Duplicated);
        for _ in 0..2 {
            let env = b.recv().unwrap();
            assert!(!env.lost);
            assert_eq!(env.deliver_at, t);
            assert_eq!(env.msg, 3);
        }
        assert!(b.try_recv().is_none());
        assert_eq!(fabric.stats().dups(MsgClass::Update), 1);
    }

    #[test]
    fn delayed_messages_pay_the_spike() {
        let fabric = Fabric::<u8>::new(Topology::cluster(2, profiles::ib_qdr()));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));
        let spike = SimTime::from_us(30);
        fabric.set_fault_plan(crate::fault::FaultPlan::lossy(11, 0.0, 0.0, 1.0, spike));
        let (t, fate) = a.send_faulted(b.id(), SimTime::ZERO, 64, MsgClass::Data, 5).unwrap();
        assert_eq!(fate, crate::fault::SendFate::Delayed(spike));
        let env = b.recv().unwrap();
        assert!(!env.lost);
        assert_eq!(env.deliver_at, t + spike, "spike rides on top of the route cost");
        assert_eq!(fabric.stats().delays(MsgClass::Data), 1);
    }

    #[test]
    fn reliable_send_ignores_the_fault_plan() {
        let fabric = Fabric::<u8>::new(Topology::cluster(2, profiles::ib_qdr()));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));
        fabric.set_fault_plan(crate::fault::FaultPlan::lossy(11, 1.0, 0.0, 0.0, SimTime::ZERO));
        a.send_reliable(b.id(), SimTime::ZERO, 8, MsgClass::Control, 1).unwrap();
        let env = b.recv().unwrap();
        assert!(!env.lost, "control-plane sends must bypass injected faults");
        assert_eq!(fabric.stats().total_faults(), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let topo = Topology::cluster(2, profiles::ib_qdr());
        let fabric = Fabric::<u64>::new(topo);
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));
        let b_id = b.id();
        let h = std::thread::spawn(move || {
            let mut sum = 0;
            for _ in 0..100 {
                sum += b.recv().unwrap().msg;
            }
            sum
        });
        for i in 0..100u64 {
            a.send(b_id, SimTime::from_ns(i), 8, MsgClass::Data, i).unwrap();
        }
        assert_eq!(h.join().unwrap(), (0..100).sum::<u64>());
    }
}
