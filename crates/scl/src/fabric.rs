//! The fabric: endpoint registry + virtual-time message delivery.
//!
//! [`Fabric::send`] is the single point where communication cost is charged:
//! it looks up the route between the source and destination nodes, computes
//! the transfer time for the declared wire size, stamps the envelope with
//! `deliver_at = now + transfer`, and pushes it onto the destination's
//! unbounded channel. Physical delivery is immediate; *virtual* delivery is
//! what the receiver's clock advances to.

use std::sync::Arc;

use crossbeam::channel::{self, Sender};
use parking_lot::RwLock;

use crate::endpoint::{Endpoint, Envelope};
use crate::error::SclError;
use crate::stats::{FabricStats, FabricStatsSnapshot, MsgClass};
use crate::time::SimTime;
use crate::topology::{EndpointId, NodeId, Topology};

struct Slot<M> {
    tx: Sender<Envelope<M>>,
    node: NodeId,
}

/// Callback invoked on every [`Fabric::send`], for tracing.
pub type SendObserver = Box<dyn Fn(EndpointId, EndpointId, SimTime, usize, MsgClass) + Send + Sync>;

/// The simulated interconnect connecting all DSM components.
pub struct Fabric<M> {
    topo: Topology,
    slots: RwLock<Vec<Slot<M>>>,
    stats: FabricStats,
    observer: RwLock<Option<SendObserver>>,
}

impl<M: Send + 'static> Fabric<M> {
    /// Create a fabric over the given topology.
    pub fn new(topo: Topology) -> Arc<Self> {
        Arc::new(Fabric {
            topo,
            slots: RwLock::new(Vec::new()),
            stats: FabricStats::default(),
            observer: RwLock::new(None),
        })
    }

    /// Attach a new endpoint on `node` and return its receiving half.
    ///
    /// # Panics
    /// Panics if `node` is not part of the topology.
    pub fn add_endpoint(self: &Arc<Self>, node: NodeId) -> Endpoint<M> {
        assert!(self.topo.node(node).is_some(), "placement on unknown node {node:?}");
        let (tx, rx) = channel::unbounded();
        let mut slots = self.slots.write();
        let id = EndpointId(slots.len() as u32);
        slots.push(Slot { tx, node });
        drop(slots);
        Endpoint::new(id, node, rx, Arc::clone(self))
    }

    /// Node an endpoint lives on.
    pub fn node_of(&self, ep: EndpointId) -> Option<NodeId> {
        self.slots.read().get(ep.0 as usize).map(|s| s.node)
    }

    /// Send `msg` from `src` (whose virtual clock reads `now`) to `dst`,
    /// declaring `wire_bytes` of payload on the wire. Returns the virtual
    /// delivery time at `dst`.
    ///
    /// The transfer cost is charged against the route between the endpoints'
    /// nodes; `wire_bytes` should be the *protocol* payload size (headers are
    /// covered by the per-message overhead term of the link model).
    pub fn send(
        &self,
        src: EndpointId,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<SimTime, SclError> {
        let slots = self.slots.read();
        let src_slot = slots.get(src.0 as usize).ok_or(SclError::UnknownEndpoint(src))?;
        let dst_slot = slots.get(dst.0 as usize).ok_or(SclError::UnknownEndpoint(dst))?;
        let route = self.topo.route(src_slot.node, dst_slot.node);
        let deliver_at = now + route.transfer_ns(wire_bytes);
        self.stats.record(class, wire_bytes);
        if let Some(observer) = self.observer.read().as_ref() {
            observer(src, dst, now, wire_bytes, class);
        }
        let env = Envelope { src, sent_at: now, deliver_at, msg };
        dst_slot.tx.send(env).map_err(|_| SclError::Disconnected(dst))?;
        Ok(deliver_at)
    }

    /// The topology this fabric simulates.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Snapshot traffic counters.
    pub fn stats(&self) -> FabricStatsSnapshot {
        self.stats.snapshot()
    }

    /// Install (or clear) an observer called on every send with
    /// `(src, dst, sent_at, wire_bytes, class)`. Purely observational: the
    /// observer cannot alter delivery times or message contents, so tracing
    /// cannot perturb virtual clocks.
    pub fn set_observer(&self, observer: Option<SendObserver>) {
        *self.observer.write() = observer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn send_charges_route_cost() {
        let topo = Topology::cluster(2, profiles::ib_qdr());
        let fabric = Fabric::<&'static str>::new(topo);
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));

        let now = SimTime::from_us(5);
        let t = a.send(b.id(), now, 4096, MsgClass::Data, "page").unwrap();
        let expected = now + profiles::ib_qdr().transfer_ns(4096);
        assert_eq!(t, expected);

        let env = b.recv().unwrap();
        assert_eq!(env.msg, "page");
        assert_eq!(env.src, a.id());
        assert_eq!(env.sent_at, now);
        assert_eq!(env.deliver_at, expected);
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let topo = Topology::cluster(2, profiles::ib_qdr());
        let fabric = Fabric::<()>::new(topo);
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        let c = fabric.add_endpoint(NodeId(1));
        let t_local = a.send(b.id(), SimTime::ZERO, 1024, MsgClass::Data, ()).unwrap();
        let t_remote = a.send(c.id(), SimTime::ZERO, 1024, MsgClass::Data, ()).unwrap();
        assert!(t_local < t_remote);
    }

    #[test]
    fn unknown_endpoint_is_an_error() {
        let fabric = Fabric::<()>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let err = a.send(EndpointId(99), SimTime::ZERO, 0, MsgClass::Control, ());
        assert_eq!(err.unwrap_err(), SclError::UnknownEndpoint(EndpointId(99)));
    }

    #[test]
    fn disconnected_endpoint_is_an_error() {
        let fabric = Fabric::<()>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        let b_id = b.id();
        drop(b);
        let err = a.send(b_id, SimTime::ZERO, 0, MsgClass::Control, ());
        assert_eq!(err.unwrap_err(), SclError::Disconnected(b_id));
    }

    #[test]
    fn stats_accumulate_by_class() {
        let fabric = Fabric::<u8>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        a.send(b.id(), SimTime::ZERO, 100, MsgClass::Data, 1).unwrap();
        a.send(b.id(), SimTime::ZERO, 10, MsgClass::Sync, 2).unwrap();
        let s = fabric.stats();
        assert_eq!(s.msgs(MsgClass::Data), 1);
        assert_eq!(s.bytes(MsgClass::Data), 100);
        assert_eq!(s.msgs(MsgClass::Sync), 1);
    }

    #[test]
    fn endpoint_ids_are_dense() {
        let fabric = Fabric::<()>::new(Topology::single_node(4));
        let eps: Vec<_> = (0..5).map(|_| fabric.add_endpoint(NodeId(0))).collect();
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.id(), EndpointId(i as u32));
            assert_eq!(fabric.node_of(ep.id()), Some(NodeId(0)));
        }
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn placement_on_unknown_node_panics() {
        let fabric = Fabric::<()>::new(Topology::single_node(1));
        let _ = fabric.add_endpoint(NodeId(3));
    }

    #[test]
    fn observer_sees_sends_without_changing_delivery() {
        use std::sync::Mutex;
        let topo = Topology::cluster(2, profiles::ib_qdr());
        let fabric = Fabric::<&'static str>::new(topo);
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));
        type Seen = Vec<(EndpointId, EndpointId, u64, usize, MsgClass)>;
        let seen: Arc<Mutex<Seen>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        fabric.set_observer(Some(Box::new(move |src, dst, now, bytes, class| {
            sink.lock().unwrap().push((src, dst, now.as_ns(), bytes, class));
        })));
        let t_observed = a.send(b.id(), SimTime::from_ns(7), 256, MsgClass::Update, "x").unwrap();
        fabric.set_observer(None);
        let t_plain = a.send(b.id(), SimTime::from_ns(7), 256, MsgClass::Update, "y").unwrap();
        assert_eq!(t_observed, t_plain, "observing a send must not change its cost");
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, vec![(a.id(), b.id(), 7, 256, MsgClass::Update)]);
    }

    #[test]
    fn cross_thread_delivery() {
        let topo = Topology::cluster(2, profiles::ib_qdr());
        let fabric = Fabric::<u64>::new(topo);
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(1));
        let b_id = b.id();
        let h = std::thread::spawn(move || {
            let mut sum = 0;
            for _ in 0..100 {
                sum += b.recv().unwrap().msg;
            }
            sum
        });
        for i in 0..100u64 {
            a.send(b_id, SimTime::from_ns(i), 8, MsgClass::Data, i).unwrap();
        }
        assert_eq!(h.join().unwrap(), (0..100).sum::<u64>());
    }
}
