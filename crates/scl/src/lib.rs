#![warn(missing_docs)]

//! # Samhita Communication Layer (SCL) — simulated
//!
//! The paper abstracts all interconnect traffic behind the *Samhita
//! Communication Layer*, whose reference implementation drives InfiniBand
//! verbs and whose proposed Xeon Phi port would use SCIF over PCI Express.
//! Neither fabric is available here, so this crate provides the substitution
//! called out in `DESIGN.md`: a **virtual-time interconnect simulator**.
//!
//! Components of the DSM (manager, memory servers, compute threads) run as
//! real OS threads, each owning an [`Endpoint`]. Messages travel over
//! crossbeam channels, but every send is charged against a link cost model
//! (`latency + per-message overhead + bytes/bandwidth`) derived from the
//! [`Topology`], and the resulting *virtual* delivery time is stamped on the
//! [`Envelope`]. Receivers advance their own virtual clocks to
//! `max(own clock, deliver_at)`, which is exactly how cost is accounted in
//! classic LogP-style simulations.
//!
//! Shared service points (the memory servers, the manager) additionally model
//! queueing with [`resource::VirtualResource`], so hot-spotting on a single
//! memory server — the phenomenon the paper's striped allocator exists to
//! avoid — shows up in measured virtual time.
//!
//! ```
//! use samhita_scl::{Fabric, Topology, profiles, SimTime, MsgClass};
//!
//! let topo = Topology::cluster(2, profiles::ib_qdr());
//! let fabric = Fabric::<u32>::new(topo);
//! let a = fabric.add_endpoint(0.into());
//! let b = fabric.add_endpoint(1.into());
//! let deliver = a.send(b.id(), SimTime::ZERO, 4096, MsgClass::Data, 7).unwrap();
//! let env = b.recv().unwrap();
//! assert_eq!(env.msg, 7);
//! assert_eq!(env.deliver_at, deliver);
//! assert!(deliver > SimTime::ZERO);
//! ```

pub mod endpoint;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod model;
pub mod profiles;
pub mod resource;
pub mod stats;
pub mod time;
pub mod topology;

pub use endpoint::{Endpoint, Envelope};
pub use error::SclError;
pub use fabric::{Fabric, SendObserver};
pub use fault::{FaultPlan, Partition, RetryPolicy, SendFate};
pub use model::LinkModel;
pub use resource::{DepthGauge, QueueSample, ResourceStats, VirtualResource};
pub use stats::{FabricStats, FabricStatsSnapshot, MsgClass};
pub use time::SimTime;
pub use topology::{EndpointId, NodeId, NodeKind, Topology};
