//! Simulated machine topologies.
//!
//! A [`Topology`] is a set of nodes plus an effective [`LinkModel`] for every
//! ordered node pair (precomputed at construction). Two presets cover the
//! paper's settings:
//!
//! * [`Topology::cluster`] — N homogeneous nodes behind one switch, the
//!   paper's actual evaluation platform (each communication crosses
//!   PCIe + HCA + switch + HCA + PCIe; we fold that into the link profile).
//! * [`Topology::hetero_node`] — one host node plus one or more coprocessor
//!   nodes joined by a PCIe-class bus, the Xeon Phi scenario of Figure 1.
//!   Coprocessor↔coprocessor traffic crosses the bus twice (through the
//!   host root complex).

use serde::{Deserialize, Serialize};

use crate::model::LinkModel;
use crate::profiles;

/// Identifies a node (a host, a cluster node, or a coprocessor).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies an endpoint attached to the fabric.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EndpointId(pub u32);

/// What a node is, for placement decisions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A general-purpose host processor with large memory (runs memory
    /// servers and the manager in the heterogeneous scenario).
    Host,
    /// An accelerator / coprocessor (runs compute threads).
    Coprocessor,
    /// A homogeneous cluster node (may run anything).
    ClusterNode,
}

/// A node in the simulated machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Node {
    /// What the node is, for placement decisions.
    pub kind: NodeKind,
    /// Number of hardware cores, used by thread placement.
    pub cores: u32,
}

/// The simulated machine: nodes and the effective link model between every
/// pair of them.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: Vec<Node>,
    /// Row-major `nodes.len() x nodes.len()` matrix of route models.
    routes: Vec<LinkModel>,
}

impl Topology {
    /// Build a topology from explicit nodes and a route function.
    pub fn from_fn(nodes: Vec<Node>, mut route: impl FnMut(usize, usize) -> LinkModel) -> Self {
        assert!(!nodes.is_empty(), "topology needs at least one node");
        let n = nodes.len();
        let mut routes = Vec::with_capacity(n * n);
        for a in 0..n {
            for b in 0..n {
                routes.push(if a == b { profiles::intra_node() } else { route(a, b) });
            }
        }
        Topology { nodes, routes }
    }

    /// A single node; every message is an intra-node handoff. Useful for
    /// tests and for the "Samhita on one cache-coherent node" configuration.
    pub fn single_node(cores: u32) -> Self {
        Topology::from_fn(vec![Node { kind: NodeKind::Host, cores }], |_, _| profiles::intra_node())
    }

    /// `n_nodes` homogeneous cluster nodes behind a single switch, all pairs
    /// reachable at the given link profile (the profile should already fold
    /// in the switch crossing, as [`profiles::ib_qdr`] does).
    pub fn cluster(n_nodes: u32, link: LinkModel) -> Self {
        assert!(n_nodes >= 1);
        let nodes = (0..n_nodes).map(|_| Node { kind: NodeKind::ClusterNode, cores: 8 }).collect();
        Topology::from_fn(nodes, |_, _| link)
    }

    /// One host (node 0) plus `n_coprocessors` coprocessor nodes of
    /// `cop_cores` cores each, joined by `bus` (PCIe-class). Traffic between
    /// two coprocessors must cross the bus twice.
    pub fn hetero_node(n_coprocessors: u32, cop_cores: u32, bus: LinkModel) -> Self {
        assert!(n_coprocessors >= 1);
        let mut nodes = vec![Node { kind: NodeKind::Host, cores: 16 }];
        nodes.extend(
            (0..n_coprocessors).map(|_| Node { kind: NodeKind::Coprocessor, cores: cop_cores }),
        );
        Topology::from_fn(nodes, |a, b| {
            let host = 0usize;
            if a == host || b == host {
                bus
            } else {
                bus.chain(&bus)
            }
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the topology has exactly one node.
    pub fn is_empty(&self) -> bool {
        false // constructors guarantee >= 1 node
    }

    /// The node descriptor, if it exists.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0 as usize)
    }

    /// All nodes of a given kind, in id order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.kind == kind)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// The effective route model from `a` to `b`.
    ///
    /// # Panics
    /// Panics if either node id is out of range.
    pub fn route(&self, a: NodeId, b: NodeId) -> &LinkModel {
        let n = self.nodes.len();
        let (ai, bi) = (a.0 as usize, b.0 as usize);
        assert!(ai < n && bi < n, "node id out of range");
        &self.routes[ai * n + bi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_routes_are_intra_node() {
        let t = Topology::single_node(8);
        assert_eq!(t.len(), 1);
        assert_eq!(*t.route(NodeId(0), NodeId(0)), profiles::intra_node());
    }

    #[test]
    fn cluster_routes_are_symmetric() {
        let t = Topology::cluster(6, profiles::ib_qdr());
        assert_eq!(t.len(), 6);
        assert_eq!(t.route(NodeId(1), NodeId(4)), t.route(NodeId(4), NodeId(1)));
        assert_eq!(*t.route(NodeId(0), NodeId(5)), profiles::ib_qdr());
        // self-route stays cheap
        assert!(t.route(NodeId(2), NodeId(2)).latency_ns < profiles::ib_qdr().latency_ns);
    }

    #[test]
    fn hetero_node_double_crosses_bus_between_coprocessors() {
        let bus = profiles::scif();
        let t = Topology::hetero_node(2, 60, bus);
        assert_eq!(t.len(), 3);
        assert_eq!(t.node(NodeId(0)).unwrap().kind, NodeKind::Host);
        assert_eq!(t.node(NodeId(1)).unwrap().kind, NodeKind::Coprocessor);
        let host_cop = t.route(NodeId(0), NodeId(1));
        let cop_cop = t.route(NodeId(1), NodeId(2));
        assert_eq!(cop_cop.latency_ns, 2 * host_cop.latency_ns);
    }

    #[test]
    fn nodes_of_kind_filters() {
        let t = Topology::hetero_node(3, 57, profiles::scif());
        let cops: Vec<_> = t.nodes_of_kind(NodeKind::Coprocessor).collect();
        assert_eq!(cops, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.nodes_of_kind(NodeKind::Host).count(), 1);
    }

    #[test]
    #[should_panic(expected = "node id out of range")]
    fn route_panics_out_of_range() {
        let t = Topology::single_node(1);
        t.route(NodeId(0), NodeId(3));
    }
}
