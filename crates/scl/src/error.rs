//! SCL error types.

use std::fmt;

use crate::topology::EndpointId;

/// Errors surfaced by the communication layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SclError {
    /// The destination endpoint has been dropped (its receiver is gone).
    Disconnected(EndpointId),
    /// The destination endpoint id was never registered with the fabric.
    UnknownEndpoint(EndpointId),
    /// A blocking receive found the channel closed and drained.
    ChannelClosed,
    /// Every retransmission attempt towards the endpoint was lost; the
    /// retry policy declared it dead (crashed, partitioned away, or the
    /// fault plan is simply too hostile for the configured attempt cap).
    Unreachable(EndpointId),
}

impl fmt::Display for SclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SclError::Disconnected(id) => write!(f, "endpoint {:?} disconnected", id),
            SclError::UnknownEndpoint(id) => write!(f, "unknown endpoint {:?}", id),
            SclError::ChannelClosed => write!(f, "endpoint channel closed"),
            SclError::Unreachable(id) => {
                write!(f, "endpoint {:?} unreachable after retries", id)
            }
        }
    }
}

impl std::error::Error for SclError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SclError::UnknownEndpoint(EndpointId(42));
        assert!(e.to_string().contains("42"));
        assert!(SclError::ChannelClosed.to_string().contains("closed"));
        assert!(SclError::Unreachable(EndpointId(3)).to_string().contains("unreachable"));
    }
}
