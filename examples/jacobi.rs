//! Jacobi iteration on both backends: the paper's Figure 12 workload as a
//! runnable application.
//!
//! ```text
//! cargo run --release --example jacobi [grid_n] [iters] [--trace out.json] [--faults seed]
//! ```
//!
//! With `--trace`, a dedicated 4-thread Samhita run records a protocol event
//! trace, verifies the RegC invariants on it, and writes it as Chrome
//! trace-event JSON — open it at <https://ui.perfetto.dev>.
//!
//! With `--faults`, every Samhita run rides a lossy fabric (seeded drops,
//! duplicates, latency spikes) over two replicated memory servers; the
//! results must still match the fault-free serial reference bit for bit,
//! and the injected/retried/failed-over counts are printed at exit.

use samhita_repro::core::{FaultConfig, SamhitaConfig};
use samhita_repro::kernels::{run_jacobi, serial_reference_jacobi, JacobiParams};
use samhita_repro::rt::{KernelRt, NativeRt, SamhitaRt};

fn main() {
    let mut positional = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            trace_path = Some(args.next().expect("--trace needs a path"));
        } else if a == "--faults" {
            fault_seed =
                Some(args.next().expect("--faults needs a seed").parse().expect("fault seed"));
        } else {
            positional.push(a);
        }
    }
    let n: usize = positional.first().map(|v| v.parse().expect("grid size")).unwrap_or(254);
    let iters: usize = positional.get(1).map(|v| v.parse().expect("iterations")).unwrap_or(20);

    println!("Jacobi, {n}x{n} interior grid, {iters} sweeps (virtual time)\n");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>12} {:>10}",
        "backend", "threads", "makespan", "sync(mean)", "halo-refetch", "speedup"
    );

    let baseline = {
        let rt = NativeRt::default();
        run_jacobi(&rt, &JacobiParams { n, iters, threads: 1 }).report.makespan
    };

    for threads in [1u32, 2, 4, 8] {
        let rt = NativeRt::default();
        let r = run_jacobi(&rt, &JacobiParams { n, iters, threads });
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>12} {:>10.2}",
            rt.name(),
            threads,
            r.report.makespan.to_string(),
            r.report.mean_sync().to_string(),
            "-",
            baseline.as_secs_f64() / r.report.makespan.as_secs_f64(),
        );
    }
    let (mut injected, mut retries, mut failovers) = (0u64, 0u64, 0u64);
    for threads in [1u32, 2, 4, 8, 16, 32] {
        let rt = SamhitaRt::new(samhita_cfg(fault_seed));
        let r = run_jacobi(&rt, &JacobiParams { n, iters, threads });
        injected += r.report.fabric.total_faults();
        retries += r.report.total_of(|t| t.retries);
        failovers += r.report.total_of(|t| t.failovers);
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>12} {:>10.2}",
            rt.name(),
            threads,
            r.report.makespan.to_string(),
            r.report.mean_sync().to_string(),
            r.report.total_of(|t| t.page_refetches),
            baseline.as_secs_f64() / r.report.makespan.as_secs_f64(),
        );
    }

    // Verify against the serial reference (bitwise: Jacobi is data-parallel —
    // this holds even on the lossy fabric, which is the point of the
    // retry/failover machinery).
    let rt = SamhitaRt::new(samhita_cfg(fault_seed));
    let r = run_jacobi(&rt, &JacobiParams { n: 30, iters: 8, threads: 4 });
    assert_eq!(r.grid, serial_reference_jacobi(30, 8), "DSM run must equal serial reference");
    println!("\nverification: 4-thread Samhita grid identical to serial reference ✓");
    if let Some(seed) = fault_seed {
        println!(
            "faults (seed {seed}): {injected} injected, {retries} retried, \
             {failovers} failed over — results unaffected"
        );
    }

    if let Some(path) = &trace_path {
        let rt = SamhitaRt::new(SamhitaConfig { tracing: true, ..samhita_cfg(fault_seed) });
        run_jacobi(&rt, &JacobiParams { n, iters, threads: 4 });
        let trace = rt.take_trace().expect("tracing was enabled");
        trace.check_invariants().expect("RegC invariants violated");
        std::fs::write(path, trace.to_chrome_json()).expect("write trace file");
        println!("wrote {path} ({} events) — open at https://ui.perfetto.dev", trace.len());
    }
}

/// The paper's fault-free platform, or — with `--faults` — the same cluster
/// with two write-through-replicated memory servers behind a lossy fabric.
fn samhita_cfg(fault_seed: Option<u64>) -> SamhitaConfig {
    match fault_seed {
        None => SamhitaConfig::default(),
        Some(seed) => SamhitaConfig {
            mem_servers: 2,
            replica_offset: 1,
            faults: FaultConfig::lossy(seed, 0.03, 0.01, 0.03, 3_000),
            ..SamhitaConfig::default()
        },
    }
}
