//! Jacobi iteration on both backends: the paper's Figure 12 workload as a
//! runnable application.
//!
//! ```text
//! cargo run --release --example jacobi [grid_n] [iters] \
//!     [--trace out.json] [--faults seed] [--metrics-out out.json]
//! ```
//!
//! With `--trace`, a dedicated 4-thread Samhita run records a protocol event
//! trace, verifies the RegC invariants on it, and writes it as Chrome
//! trace-event JSON — open it at <https://ui.perfetto.dev>. With
//! `--metrics-out`, the same run also emits a machine-readable `BenchReport`.
//!
//! With `--faults`, every Samhita run rides a lossy fabric (seeded drops,
//! duplicates, latency spikes) over two replicated memory servers; the
//! results must still match the fault-free serial reference bit for bit,
//! and the injected/retried/failed-over counts are printed at exit.

use samhita_bench::{run_summary, BenchReport, ExampleArgs};
use samhita_repro::core::SamhitaConfig;
use samhita_repro::kernels::{run_jacobi, serial_reference_jacobi, JacobiParams};
use samhita_repro::rt::{KernelRt, NativeRt, SamhitaRt};

fn main() {
    let args = ExampleArgs::parse();
    let n = args.pos_usize(0, 254);
    let iters = args.pos_usize(1, 20);

    println!("Jacobi, {n}x{n} interior grid, {iters} sweeps (virtual time)\n");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>12} {:>10}",
        "backend", "threads", "makespan", "sync(mean)", "halo-refetch", "speedup"
    );

    let baseline = {
        let rt = NativeRt::default();
        run_jacobi(&rt, &JacobiParams { n, iters, threads: 1 }).report.makespan
    };

    for threads in [1u32, 2, 4, 8] {
        let rt = NativeRt::default();
        let r = run_jacobi(&rt, &JacobiParams { n, iters, threads });
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>12} {:>10.2}",
            rt.name(),
            threads,
            r.report.makespan.to_string(),
            r.report.mean_sync().to_string(),
            "-",
            baseline.as_secs_f64() / r.report.makespan.as_secs_f64(),
        );
    }
    let base_cfg = args.base_config(SamhitaConfig::default());
    let (mut injected, mut retries, mut failovers) = (0u64, 0u64, 0u64);
    let mut last_summary = String::new();
    for threads in [1u32, 2, 4, 8, 16, 32] {
        let rt = SamhitaRt::new(base_cfg.clone());
        let r = run_jacobi(&rt, &JacobiParams { n, iters, threads });
        injected += r.report.fabric.total_faults();
        retries += r.report.total_of(|t| t.retries);
        failovers += r.report.total_of(|t| t.failovers);
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>12} {:>10.2}",
            rt.name(),
            threads,
            r.report.makespan.to_string(),
            r.report.mean_sync().to_string(),
            r.report.total_of(|t| t.page_refetches),
            baseline.as_secs_f64() / r.report.makespan.as_secs_f64(),
        );
        last_summary = run_summary(&r.report);
    }
    println!("\n32-thread Samhita run summary:\n{last_summary}");

    // Verify against the serial reference (bitwise: Jacobi is data-parallel —
    // this holds even on the lossy fabric, which is the point of the
    // retry/failover machinery).
    let rt = SamhitaRt::new(base_cfg.clone());
    let r = run_jacobi(&rt, &JacobiParams { n: 30, iters: 8, threads: 4 });
    assert_eq!(r.grid, serial_reference_jacobi(30, 8), "DSM run must equal serial reference");
    println!("verification: 4-thread Samhita grid identical to serial reference ✓");
    if let Some(seed) = args.fault_seed {
        println!(
            "faults (seed {seed}): {injected} injected, {retries} retried, \
             {failovers} failed over — results unaffected"
        );
    }

    if args.wants_trace() {
        let p = JacobiParams { n, iters, threads: 4 };
        let cfg = SamhitaConfig { tracing: true, ..base_cfg };
        let rt = SamhitaRt::new(cfg.clone());
        let report = run_jacobi(&rt, &p).report;
        let trace = rt.take_trace().expect("tracing was enabled");
        trace.check_invariants().expect("RegC invariants violated");
        if let Some(path) = &args.trace_path {
            std::fs::write(path, trace.to_chrome_json()).expect("write trace file");
            println!("wrote {path} ({} events) — open at https://ui.perfetto.dev", trace.len());
        }
        if let Some(path) = &args.metrics_out {
            let bench =
                BenchReport::from_run("jacobi", &format!("{p:?}"), &cfg, 4, &report, Some(&trace));
            std::fs::write(path, bench.to_json()).expect("write metrics file");
            println!("wrote {path}");
        }
    }
}
