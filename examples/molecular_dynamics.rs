//! Velocity-Verlet molecular dynamics on both backends: the paper's
//! Figure 13 workload ("applications that are computationally intensive …
//! can easily mask the synchronization overhead of Samhita").
//!
//! ```text
//! cargo run --release --example molecular_dynamics [particles] [steps] \
//!     [--trace out.json] [--faults seed] [--metrics-out out.json]
//! ```
//!
//! With `--trace`, a dedicated 4-thread Samhita run records a protocol
//! event trace and writes it as Chrome trace-event JSON; `--metrics-out`
//! condenses the same run into a machine-readable `BenchReport`. With
//! `--faults`, every Samhita run rides the standard lossy-fabric chaos
//! configuration and the trajectories must still be bit-exact.

use samhita_bench::{run_summary, BenchReport, ExampleArgs};
use samhita_repro::core::SamhitaConfig;
use samhita_repro::kernels::{run_md, serial_reference_md, MdParams};
use samhita_repro::rt::{KernelRt, NativeRt, SamhitaRt};

fn main() {
    let args = ExampleArgs::parse();
    let n = args.pos_usize(0, 768);
    let steps = args.pos_usize(1, 5);

    let params = |threads| MdParams { n, steps, dt: 1e-3, threads, seed: 42 };
    println!("molecular dynamics, {n} particles, {steps} velocity-Verlet steps\n");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>16} {:>10}",
        "backend", "threads", "makespan", "sync(mean)", "energy (K+P)", "speedup"
    );

    let baseline = run_md(&NativeRt::default(), &params(1)).report.makespan;

    for threads in [1u32, 2, 4, 8] {
        let rt = NativeRt::default();
        let r = run_md(&rt, &params(threads));
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>16.6} {:>10.2}",
            rt.name(),
            threads,
            r.report.makespan.to_string(),
            r.report.mean_sync().to_string(),
            r.kinetic + r.potential,
            baseline.as_secs_f64() / r.report.makespan.as_secs_f64(),
        );
    }
    let base_cfg = args.base_config(SamhitaConfig::default());
    let mut last_summary = String::new();
    for threads in [1u32, 2, 4, 8, 16, 32] {
        let rt = SamhitaRt::new(base_cfg.clone());
        let r = run_md(&rt, &params(threads));
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>16.6} {:>10.2}",
            rt.name(),
            threads,
            r.report.makespan.to_string(),
            r.report.mean_sync().to_string(),
            r.kinetic + r.potential,
            baseline.as_secs_f64() / r.report.makespan.as_secs_f64(),
        );
        last_summary = run_summary(&r.report);
    }
    println!("\n32-thread Samhita run summary:\n{last_summary}");

    // Trajectories are deterministic: the DSM run reproduces the serial
    // reference bit for bit.
    let small = MdParams { n: 64, steps: 3, dt: 1e-3, threads: 4, seed: 7 };
    let r = run_md(&SamhitaRt::new(base_cfg.clone()), &small);
    assert_eq!(r.positions, serial_reference_md(&small));
    println!("verification: 4-thread Samhita trajectory identical to serial reference ✓");

    if args.wants_trace() {
        let p = params(4);
        let cfg = SamhitaConfig { tracing: true, ..base_cfg };
        let rt = SamhitaRt::new(cfg.clone());
        let report = run_md(&rt, &p).report;
        let trace = rt.take_trace().expect("tracing was enabled");
        trace.check_invariants().expect("RegC invariants violated");
        if let Some(path) = &args.trace_path {
            std::fs::write(path, trace.to_chrome_json()).expect("write trace file");
            println!("wrote {path} ({} events) — open at https://ui.perfetto.dev", trace.len());
        }
        if let Some(path) = &args.metrics_out {
            let bench =
                BenchReport::from_run("md", &format!("{p:?}"), &cfg, 4, &report, Some(&trace));
            std::fs::write(path, bench.to_json()).expect("write metrics file");
            println!("wrote {path}");
        }
    }
}
