//! Velocity-Verlet molecular dynamics on both backends: the paper's
//! Figure 13 workload ("applications that are computationally intensive …
//! can easily mask the synchronization overhead of Samhita").
//!
//! ```text
//! cargo run --release --example molecular_dynamics [particles] [steps]
//! ```

use samhita_repro::core::SamhitaConfig;
use samhita_repro::kernels::{run_md, serial_reference_md, MdParams};
use samhita_repro::rt::{KernelRt, NativeRt, SamhitaRt};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|v| v.parse().expect("particle count")).unwrap_or(768);
    let steps: usize = args.next().map(|v| v.parse().expect("steps")).unwrap_or(5);

    let params = |threads| MdParams { n, steps, dt: 1e-3, threads, seed: 42 };
    println!("molecular dynamics, {n} particles, {steps} velocity-Verlet steps\n");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>16} {:>10}",
        "backend", "threads", "makespan", "sync(mean)", "energy (K+P)", "speedup"
    );

    let baseline = run_md(&NativeRt::default(), &params(1)).report.makespan;

    for threads in [1u32, 2, 4, 8] {
        let rt = NativeRt::default();
        let r = run_md(&rt, &params(threads));
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>16.6} {:>10.2}",
            rt.name(),
            threads,
            r.report.makespan.to_string(),
            r.report.mean_sync().to_string(),
            r.kinetic + r.potential,
            baseline.as_secs_f64() / r.report.makespan.as_secs_f64(),
        );
    }
    for threads in [1u32, 2, 4, 8, 16, 32] {
        let rt = SamhitaRt::new(SamhitaConfig::default());
        let r = run_md(&rt, &params(threads));
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>16.6} {:>10.2}",
            rt.name(),
            threads,
            r.report.makespan.to_string(),
            r.report.mean_sync().to_string(),
            r.kinetic + r.potential,
            baseline.as_secs_f64() / r.report.makespan.as_secs_f64(),
        );
    }

    // Trajectories are deterministic: the DSM run reproduces the serial
    // reference bit for bit.
    let small = MdParams { n: 64, steps: 3, dt: 1e-3, threads: 4, seed: 7 };
    let r = run_md(&SamhitaRt::new(SamhitaConfig::default()), &small);
    assert_eq!(r.positions, serial_reference_md(&small));
    println!("\nverification: 4-thread Samhita trajectory identical to serial reference ✓");
}
