//! Condition variables over the DSM: a bounded buffer with producers and
//! consumers on simulated non-coherent cores.
//!
//! Samhita offers "mutual exclusion locks, condition variable signaling and
//! barrier synchronization" — this example exercises the condvar path
//! (manager-mediated wait queues + lock re-grant, with RegC consistency at
//! every wait).
//!
//! ```text
//! cargo run --release --example producer_consumer \
//!     [--trace out.json] [--faults seed] [--metrics-out out.json]
//! ```

use samhita_bench::{run_summary, BenchReport, ExampleArgs};
use samhita_repro::core::{Samhita, SamhitaConfig};

const CAPACITY: u64 = 8;
const ITEMS_PER_PRODUCER: u64 = 50;
const PRODUCERS: u64 = 2;
const CONSUMERS: u64 = 2;

fn main() {
    let args = ExampleArgs::parse();
    let cfg =
        SamhitaConfig { tracing: args.wants_trace(), ..args.base_config(SamhitaConfig::default()) };
    let system = Samhita::new(cfg.clone());

    // Shared state: ring buffer + head/tail/done counters, all lock-protected.
    let buf = system.alloc_global(CAPACITY * 8);
    let head = system.alloc_global(8); // total dequeued
    let tail = system.alloc_global(8); // total enqueued
    let done = system.alloc_global(8); // producers finished
    let sum = system.alloc_global(8); // checksum of consumed items

    let lock = system.create_mutex();
    let not_full = system.create_cond();
    let not_empty = system.create_cond();

    let total_items = PRODUCERS * ITEMS_PER_PRODUCER;
    let threads = (PRODUCERS + CONSUMERS) as u32;

    let report = system.run(threads, |ctx| {
        let tid = ctx.tid() as u64;
        if tid < PRODUCERS {
            // Let the consumers reach their empty-buffer wait first, so the
            // signal/wake path is actually exercised (wall-clock sleep: the
            // virtual clock is unaffected).
            std::thread::sleep(std::time::Duration::from_millis(25));
            // Producer: push `ITEMS_PER_PRODUCER` numbered items.
            for i in 0..ITEMS_PER_PRODUCER {
                let item = tid * ITEMS_PER_PRODUCER + i + 1;
                ctx.lock(lock);
                while ctx.read_u64(tail) - ctx.read_u64(head) == CAPACITY {
                    ctx.cond_wait(not_full, lock);
                }
                let t = ctx.read_u64(tail);
                ctx.write_u64(buf + (t % CAPACITY) * 8, item);
                ctx.write_u64(tail, t + 1);
                ctx.cond_signal(not_empty);
                ctx.unlock(lock);
            }
            ctx.lock(lock);
            let d = ctx.read_u64(done) + 1;
            ctx.write_u64(done, d);
            if d == PRODUCERS {
                // Wake any consumer blocked on an empty buffer at the end.
                ctx.cond_broadcast(not_empty);
            }
            ctx.unlock(lock);
        } else {
            // Consumer: pop until all items are accounted for.
            loop {
                ctx.lock(lock);
                loop {
                    let (h, t) = (ctx.read_u64(head), ctx.read_u64(tail));
                    if h < t {
                        break;
                    }
                    if ctx.read_u64(done) == PRODUCERS {
                        ctx.unlock(lock);
                        return;
                    }
                    ctx.cond_wait(not_empty, lock);
                }
                let h = ctx.read_u64(head);
                let item = ctx.read_u64(buf + (h % CAPACITY) * 8);
                ctx.write_u64(head, h + 1);
                let s = ctx.read_u64(sum);
                ctx.write_u64(sum, s + item);
                ctx.cond_signal(not_full);
                ctx.unlock(lock);
            }
        }
    });

    let mut bytes = [0u8; 8];
    system.read_global(sum, &mut bytes);
    let consumed_sum = u64::from_le_bytes(bytes);
    let expected: u64 = (1..=total_items).sum();
    assert_eq!(consumed_sum, expected, "every produced item consumed exactly once");

    println!(
        "producer/consumer over the DSM: {PRODUCERS} producers x {ITEMS_PER_PRODUCER} items, \
         {CONSUMERS} consumers, buffer capacity {CAPACITY}"
    );
    println!("  checksum {consumed_sum} == expected {expected} ✓");
    println!("  virtual makespan : {}", report.makespan);
    println!("  mean sync time   : {}", report.mean_sync());
    println!("\nrun summary:\n{}", run_summary(&report));

    if args.wants_trace() {
        let trace = system.take_trace().expect("tracing was enabled");
        trace.check_invariants().expect("RegC invariants violated");
        if let Some(path) = &args.trace_path {
            std::fs::write(path, trace.to_chrome_json()).expect("write trace file");
            println!("  wrote {path} ({} events) — open at https://ui.perfetto.dev", trace.len());
        }
        if let Some(path) = &args.metrics_out {
            let params = format!(
                "producers={PRODUCERS} consumers={CONSUMERS} items={ITEMS_PER_PRODUCER} \
                 capacity={CAPACITY}"
            );
            let bench = BenchReport::from_run(
                "producer_consumer",
                &params,
                &cfg,
                threads,
                &report,
                Some(&trace),
            );
            std::fs::write(path, bench.to_json()).expect("write metrics file");
            println!("  wrote {path}");
        }
    }

    let stats = system.shutdown();
    println!("  condvar waits    : {}", stats.manager.cond_waits);
    println!("  condvar signals  : {}", stats.manager.cond_signals);
}
