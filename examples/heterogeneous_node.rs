//! The Figure 1 scenario: one host processor (manager + memory server, large
//! memory) and a many-core coprocessor over PCI Express, with compute
//! threads on the coprocessor cores — Samhita's proposed Xeon Phi
//! deployment. Compares the stock verbs-proxy transport against the SCIF
//! port the paper's §V proposes.
//!
//! ```text
//! cargo run --release --example heterogeneous_node \
//!     [--trace out.json] [--faults seed] [--metrics-out out.json]
//! ```
//!
//! `--trace` / `--metrics-out` record the final SCIF 32-thread run.

use samhita_bench::{run_summary, BenchReport, ExampleArgs};
use samhita_repro::core::{FabricProfile, SamhitaConfig, TopologyKind};
use samhita_repro::kernels::{run_micro, AllocMode, MicroParams};
use samhita_repro::rt::SamhitaRt;

fn main() {
    let args = ExampleArgs::parse();
    println!("host + coprocessor node (Figure 1): 60 coprocessor cores over PCIe\n");
    println!(
        "{:>14} {:>8} {:>12} {:>12} {:>14}",
        "transport", "threads", "compute", "sync", "makespan"
    );

    let mut scif_summary = String::new();
    for fabric in [FabricProfile::PcieVerbsProxy, FabricProfile::Scif] {
        for threads in [4u32, 16, 32] {
            let record = args.wants_trace() && fabric == FabricProfile::Scif && threads == 32;
            let cfg = SamhitaConfig {
                topology: TopologyKind::HeteroNode { coprocessors: 1, cores_per_cop: 60 },
                fabric,
                tracing: record,
                ..args.base_config(SamhitaConfig::default())
            };
            let rt = SamhitaRt::new(cfg.clone());
            let p = MicroParams::paper(10, 2, AllocMode::Global, threads);
            let r = run_micro(&rt, &p);
            println!(
                "{:>14} {:>8} {:>12} {:>12} {:>14}",
                match fabric {
                    FabricProfile::PcieVerbsProxy => "verbs proxy",
                    FabricProfile::Scif => "SCIF",
                    _ => unreachable!(),
                },
                threads,
                r.report.mean_compute().to_string(),
                r.report.mean_sync().to_string(),
                r.report.makespan.to_string(),
            );
            if fabric == FabricProfile::Scif && threads == 32 {
                scif_summary = run_summary(&r.report);
            }
            if record {
                let trace = rt.take_trace().expect("tracing was enabled");
                trace.check_invariants().expect("RegC invariants violated");
                if let Some(path) = &args.trace_path {
                    std::fs::write(path, trace.to_chrome_json()).expect("write trace file");
                    println!("{:>14} wrote {} ({} events)", "", path, trace.len());
                }
                if let Some(path) = &args.metrics_out {
                    let bench = BenchReport::from_run(
                        "heterogeneous_node",
                        &format!("scif {p:?}"),
                        &cfg,
                        threads,
                        &r.report,
                        Some(&trace),
                    );
                    std::fs::write(path, bench.to_json()).expect("write metrics file");
                    println!("{:>14} wrote {}", "", path);
                }
            }
        }
    }
    println!("\nSCIF 32-thread run summary:\n{scif_summary}");

    println!(
        "SCIF removes the verbs-proxy software overhead on every PCIe crossing —\n\
         the communication-layer improvement §V of the paper proposes."
    );
}
