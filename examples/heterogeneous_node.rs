//! The Figure 1 scenario: one host processor (manager + memory server, large
//! memory) and a many-core coprocessor over PCI Express, with compute
//! threads on the coprocessor cores — Samhita's proposed Xeon Phi
//! deployment. Compares the stock verbs-proxy transport against the SCIF
//! port the paper's §V proposes.
//!
//! ```text
//! cargo run --release --example heterogeneous_node
//! ```

use samhita_repro::core::{FabricProfile, SamhitaConfig, TopologyKind};
use samhita_repro::kernels::{run_micro, AllocMode, MicroParams};
use samhita_repro::rt::SamhitaRt;

fn main() {
    println!("host + coprocessor node (Figure 1): 60 coprocessor cores over PCIe\n");
    println!(
        "{:>14} {:>8} {:>12} {:>12} {:>14}",
        "transport", "threads", "compute", "sync", "makespan"
    );

    for fabric in [FabricProfile::PcieVerbsProxy, FabricProfile::Scif] {
        for threads in [4u32, 16, 32] {
            let cfg = SamhitaConfig {
                topology: TopologyKind::HeteroNode { coprocessors: 1, cores_per_cop: 60 },
                fabric,
                ..SamhitaConfig::default()
            };
            let rt = SamhitaRt::new(cfg);
            let p = MicroParams::paper(10, 2, AllocMode::Global, threads);
            let r = run_micro(&rt, &p);
            println!(
                "{:>14} {:>8} {:>12} {:>12} {:>14}",
                match fabric {
                    FabricProfile::PcieVerbsProxy => "verbs proxy",
                    FabricProfile::Scif => "SCIF",
                    _ => unreachable!(),
                },
                threads,
                r.report.mean_compute().to_string(),
                r.report.mean_sync().to_string(),
                r.report.makespan.to_string(),
            );
        }
    }

    println!(
        "\nSCIF removes the verbs-proxy software overhead on every PCIe crossing —\n\
         the communication-layer improvement §V of the paper proposes."
    );
}
