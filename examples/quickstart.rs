//! Quickstart: bring up a Samhita system, share memory between threads that
//! have no hardware cache coherence, and read the statistics back.
//!
//! ```text
//! cargo run --release --example quickstart \
//!     [--trace out.json] [--faults seed] [--metrics-out out.json]
//! ```

use samhita_bench::{run_summary, BenchReport, ExampleArgs};
use samhita_repro::core::{Samhita, SamhitaConfig};

fn main() {
    let args = ExampleArgs::parse();
    // The default configuration models the paper's evaluation platform: a
    // six-node QDR InfiniBand cluster with one manager node and one
    // memory-server node; compute threads fill the remaining four nodes.
    let cfg =
        SamhitaConfig { tracing: args.wants_trace(), ..args.base_config(SamhitaConfig::default()) };
    let system = Samhita::new(cfg.clone());

    // Host-side setup: global memory and synchronization objects.
    let n_threads = 8u32;
    let histogram = system.alloc_global(64 * 8); // 64 u64-sized bins
    let total = system.alloc_global(8);
    let lock = system.create_mutex();
    let barrier = system.create_barrier(n_threads);

    // Run a parallel region. Each thread gets a `ThreadCtx`: its window
    // into the shared global address space.
    let report = system.run(n_threads, |ctx| {
        // Thread-local allocation (strategy 1: the per-thread arena —
        // no manager round-trip, no false sharing by construction).
        let scratch = ctx.alloc(1024, 8);
        for i in 0..128u64 {
            ctx.write_u64(scratch + i * 8, i * ctx.tid() as u64);
        }

        // Ordinary-region writes to disjoint histogram bins: page
        // granularity, twin + diff at the next synchronization.
        let my_bins = 64 / ctx.nthreads() as u64;
        for b in 0..my_bins {
            let bin = ctx.tid() as u64 * my_bins + b;
            ctx.write_u64(histogram + bin * 8, bin * bin);
        }

        // A consistency region: stores under the lock are tracked at fine
        // (object) granularity and travel with the lock at release.
        ctx.lock(lock);
        let t = ctx.read_u64(total);
        ctx.write_u64(total, t + ctx.tid() as u64 + 1);
        ctx.unlock(lock);

        // The barrier is also a consistency operation: dirty pages flush,
        // write notices propagate, stale copies invalidate.
        ctx.barrier(barrier);

        // Every thread now sees every bin and the full total.
        let checksum: u64 = (0..64).map(|b| ctx.read_u64(histogram + b * 8)).sum();
        assert_eq!(checksum, (0..64u64).map(|b| b * b).sum());
        assert_eq!(ctx.read_u64(total), (1..=n_threads as u64).sum());
    });

    println!("samhita quickstart: {} threads over a simulated non-coherent machine", n_threads);
    println!("  virtual makespan        : {}", report.makespan);
    println!("  mean compute / thread   : {}", report.mean_compute());
    println!("  mean sync / thread      : {}", report.mean_sync());
    println!("  line misses (demand)    : {}", report.total_of(|t| t.line_misses));
    println!("  prefetch hits           : {}", report.total_of(|t| t.prefetch_hits));
    println!("  invalidations received  : {}", report.total_of(|t| t.invalidations));
    println!("  diff bytes flushed      : {}", report.total_of(|t| t.diff_bytes_flushed));
    println!("  fine-grain bytes flushed: {}", report.total_of(|t| t.fine_bytes_flushed));
    println!("\nrun summary:\n{}", run_summary(&report));

    // Host can inspect global memory after the run.
    let mut buf = [0u8; 8];
    system.read_global(total, &mut buf);
    println!("  final total (host view) : {}", u64::from_le_bytes(buf));

    if args.wants_trace() {
        let trace = system.take_trace().expect("tracing was enabled");
        trace.check_invariants().expect("RegC invariants violated");
        if let Some(path) = &args.trace_path {
            std::fs::write(path, trace.to_chrome_json()).expect("write trace file");
            println!("  wrote {path} ({} events) — open at https://ui.perfetto.dev", trace.len());
        }
        if let Some(path) = &args.metrics_out {
            let bench = BenchReport::from_run(
                "quickstart",
                &format!("threads={n_threads}"),
                &cfg,
                n_threads,
                &report,
                Some(&trace),
            );
            std::fs::write(path, bench.to_json()).expect("write metrics file");
            println!("  wrote {path}");
        }
    }

    let stats = system.shutdown();
    println!("  manager requests        : {}", stats.manager.requests);
    println!("  memory-server fetches   : {}", stats.servers[0].line_fetches);
}
