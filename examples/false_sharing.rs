//! False sharing under the three allocation strategies — the heart of the
//! paper's micro-benchmark study (Figures 3–10).
//!
//! Runs the Figure 2 kernel in all three modes and shows how allocation
//! placement changes invalidation-refetch traffic and where the time goes.
//!
//! ```text
//! cargo run --release --example false_sharing [threads] [M] \
//!     [--trace out.json] [--faults seed] [--metrics-out out.json]
//! ```
//!
//! With `--trace`, the `global` run (the false-sharing one) records a
//! protocol event trace, verifies the RegC invariants on it, and writes it
//! as Chrome trace-event JSON — open it at <https://ui.perfetto.dev>.
//!
//! With `--metrics-out`, the same `global` run is condensed into a
//! machine-readable `BenchReport` (makespan, sync fraction, utilization,
//! timeline summary, hotspot pages) at the given path.
//!
//! With `--faults`, every Samhita run rides a lossy fabric (seeded drops,
//! duplicates, latency spikes) over two replicated memory servers; the
//! numerics must still check out, and the injected/retried/failed-over
//! counts are printed at exit.
//!
//! The closing hotspot report names the exact global pages that ping-pong
//! between writers in the `global` mode — the pages at block boundaries
//! where two threads' rows share a page.

use samhita_bench::{run_summary, BenchReport, ExampleArgs};
use samhita_repro::core::SamhitaConfig;
use samhita_repro::kernels::{expected_gsum, run_micro, AllocMode, MicroParams};
use samhita_repro::rt::{NativeRt, SamhitaRt};

fn main() {
    let args = ExampleArgs::parse();
    let threads = args.pos_u32(0, 8);
    let m = args.pos_usize(1, 10);

    println!("Figure 2 micro-benchmark: {threads} threads, M={m}, S=2, B=260, N=10\n");
    println!(
        "{:>16} {:>12} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "mode", "compute", "sync", "refetches", "invalidated", "diff bytes", "fine bytes"
    );

    let pth_baseline = {
        let p = MicroParams::paper(m, 2, AllocMode::Local, 1);
        run_micro(&NativeRt::default(), &p).report.mean_compute()
    };

    let base_cfg = args.base_config(SamhitaConfig::default());
    let (mut injected, mut retries, mut failovers) = (0u64, 0u64, 0u64);
    let mut global_summary = String::new();
    for mode in [AllocMode::Local, AllocMode::Global, AllocMode::GlobalStrided] {
        let traced = args.wants_trace() && mode == AllocMode::Global;
        let p = MicroParams::paper(m, 2, mode, threads);
        let cfg = SamhitaConfig { tracing: traced, ..base_cfg.clone() };
        let rt = SamhitaRt::new(cfg.clone());
        let r = run_micro(&rt, &p);
        injected += r.report.fabric.total_faults();
        retries += r.report.total_of(|t| t.retries);
        failovers += r.report.total_of(|t| t.failovers);
        // Check the numerics while we are here.
        let rel = (r.gsum - expected_gsum(&p)).abs() / expected_gsum(&p).abs();
        assert!(rel < 1e-9, "gsum off by {rel:.2e}");
        println!(
            "{:>16} {:>12} {:>12} {:>10} {:>12} {:>12} {:>12}",
            mode.label(),
            r.report.mean_compute().to_string(),
            r.report.mean_sync().to_string(),
            r.report.total_of(|t| t.page_refetches),
            r.report.total_of(|t| t.invalidations),
            r.report.total_of(|t| t.diff_bytes_flushed),
            r.report.total_of(|t| t.fine_bytes_flushed),
        );
        if mode == AllocMode::Global {
            global_summary = run_summary(&r.report);
        }
        if traced {
            let trace = rt.take_trace().expect("tracing was enabled");
            trace.check_invariants().expect("RegC invariants violated");
            if let Some(path) = &args.trace_path {
                std::fs::write(path, trace.to_chrome_json()).expect("write trace file");
                println!("{:>16} wrote {} ({} events)", "", path, trace.len());
            }
            if let Some(path) = &args.metrics_out {
                let bench = BenchReport::from_run(
                    "false_sharing",
                    &format!("{p:?}"),
                    &cfg,
                    threads,
                    &r.report,
                    Some(&trace),
                );
                std::fs::write(path, bench.to_json()).expect("write metrics file");
                println!("{:>16} wrote {}", "", path);
            }
        }
    }

    println!("\nglobal-mode run summary (the false-sharing case):\n{global_summary}");
    if let Some(seed) = args.fault_seed {
        println!(
            "faults (seed {seed}): {injected} injected, {retries} retried, \
             {failovers} failed over — numerics unaffected"
        );
    }
    println!(
        "\n1-thread pthreads compute baseline: {pth_baseline} \
         (the paper normalizes Figures 3-5 by this)"
    );
    println!(
        "local allocation draws from per-thread arenas, so threads never share a page;\n\
         global allocation false-shares at block boundaries; the strided access pattern\n\
         interleaves rows and false-shares on nearly every page."
    );
}
