//! False sharing under the three allocation strategies — the heart of the
//! paper's micro-benchmark study (Figures 3–10).
//!
//! Runs the Figure 2 kernel in all three modes and shows how allocation
//! placement changes invalidation-refetch traffic and where the time goes.
//!
//! ```text
//! cargo run --release --example false_sharing [threads] [M] [--trace out.json] [--faults seed]
//! ```
//!
//! With `--trace`, the `global` run (the false-sharing one) records a
//! protocol event trace, verifies the RegC invariants on it, and writes it
//! as Chrome trace-event JSON — open it at <https://ui.perfetto.dev>.
//!
//! With `--faults`, every Samhita run rides a lossy fabric (seeded drops,
//! duplicates, latency spikes) over two replicated memory servers; the
//! numerics must still check out, and the injected/retried/failed-over
//! counts are printed at exit.

use samhita_repro::core::{FaultConfig, SamhitaConfig};
use samhita_repro::kernels::{expected_gsum, run_micro, AllocMode, MicroParams};
use samhita_repro::rt::{NativeRt, SamhitaRt};

fn main() {
    let mut positional = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            trace_path = Some(args.next().expect("--trace needs a path"));
        } else if a == "--faults" {
            fault_seed =
                Some(args.next().expect("--faults needs a seed").parse().expect("fault seed"));
        } else {
            positional.push(a);
        }
    }
    let threads: u32 = positional.first().map(|v| v.parse().expect("threads")).unwrap_or(8);
    let m: usize = positional.get(1).map(|v| v.parse().expect("M")).unwrap_or(10);

    println!("Figure 2 micro-benchmark: {threads} threads, M={m}, S=2, B=260, N=10\n");
    println!(
        "{:>16} {:>12} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "mode", "compute", "sync", "refetches", "invalidated", "diff bytes", "fine bytes"
    );

    let pth_baseline = {
        let p = MicroParams::paper(m, 2, AllocMode::Local, 1);
        run_micro(&NativeRt::default(), &p).report.mean_compute()
    };

    let base_cfg = match fault_seed {
        None => SamhitaConfig::default(),
        Some(seed) => SamhitaConfig {
            mem_servers: 2,
            replica_offset: 1,
            faults: FaultConfig::lossy(seed, 0.03, 0.01, 0.03, 3_000),
            ..SamhitaConfig::default()
        },
    };
    let (mut injected, mut retries, mut failovers) = (0u64, 0u64, 0u64);
    for mode in [AllocMode::Local, AllocMode::Global, AllocMode::GlobalStrided] {
        let traced = trace_path.is_some() && mode == AllocMode::Global;
        let p = MicroParams::paper(m, 2, mode, threads);
        let rt = SamhitaRt::new(SamhitaConfig { tracing: traced, ..base_cfg.clone() });
        let r = run_micro(&rt, &p);
        injected += r.report.fabric.total_faults();
        retries += r.report.total_of(|t| t.retries);
        failovers += r.report.total_of(|t| t.failovers);
        // Check the numerics while we are here.
        let rel = (r.gsum - expected_gsum(&p)).abs() / expected_gsum(&p).abs();
        assert!(rel < 1e-9, "gsum off by {rel:.2e}");
        println!(
            "{:>16} {:>12} {:>12} {:>10} {:>12} {:>12} {:>12}",
            mode.label(),
            r.report.mean_compute().to_string(),
            r.report.mean_sync().to_string(),
            r.report.total_of(|t| t.page_refetches),
            r.report.total_of(|t| t.invalidations),
            r.report.total_of(|t| t.diff_bytes_flushed),
            r.report.total_of(|t| t.fine_bytes_flushed),
        );
        if traced {
            let path = trace_path.as_ref().expect("traced implies a path");
            let trace = rt.take_trace().expect("tracing was enabled");
            trace.check_invariants().expect("RegC invariants violated");
            std::fs::write(path, trace.to_chrome_json()).expect("write trace file");
            println!("{:>16} wrote {} ({} events)", "", path, trace.len());
        }
    }

    if let Some(seed) = fault_seed {
        println!(
            "\nfaults (seed {seed}): {injected} injected, {retries} retried, \
             {failovers} failed over — numerics unaffected"
        );
    }
    println!(
        "\n1-thread pthreads compute baseline: {pth_baseline} \
         (the paper normalizes Figures 3-5 by this)"
    );
    println!(
        "local allocation draws from per-thread arenas, so threads never share a page;\n\
         global allocation false-shares at block boundaries; the strided access pattern\n\
         interleaves rows and false-shares on nearly every page."
    );
}
