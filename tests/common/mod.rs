//! Shared random-program machinery for the integration suites.
//!
//! Program shape (per seed): `phases` rounds, each consisting of per-thread
//! ordinary writes to thread-owned slots, a round of lock-protected
//! read-modify-writes on shared accumulators, and a barrier. Ownership makes
//! the ordinary writes race-free; the lock serializes the accumulator
//! updates; commutative updates keep the expected state independent of
//! acquisition order — so the final memory is fully predictable and every
//! protocol path (twins, diffs, fine-grain updates, notices, invalidations,
//! refetches) is exercised on the way. `tests/random_programs.rs` checks the
//! final memory against [`interpret`]; `tests/determinism_scale.rs` checks
//! that repeated runs are bit-identical in time as well as value.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samhita_repro::core::{RunReport, Samhita, SamhitaConfig};

/// Thread-owned slots per thread (ordinary, race-free writes).
pub const SLOTS_PER_THREAD: u64 = 24;
/// Shared lock-protected accumulators.
pub const ACCUMULATORS: u64 = 3;

/// One barrier-delimited round of a generated program.
#[derive(Clone)]
pub struct Phase {
    /// Per thread: (slot index within its block, value) ordinary writes.
    pub writes: Vec<Vec<(u64, u64)>>,
    /// Per thread: (accumulator, delta) lock-protected updates.
    pub adds: Vec<Vec<(u64, u64)>>,
}

/// Generate a random `phases`-round program over `threads` threads.
pub fn generate(seed: u64, threads: u32, phases: usize) -> Vec<Phase> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..phases)
        .map(|_| Phase {
            writes: (0..threads)
                .map(|_| {
                    (0..rng.gen_range(0..12))
                        .map(|_| (rng.gen_range(0..SLOTS_PER_THREAD), rng.gen::<u64>() >> 1))
                        .collect()
                })
                .collect(),
            adds: (0..threads)
                .map(|_| {
                    (0..rng.gen_range(0..4))
                        .map(|_| (rng.gen_range(0..ACCUMULATORS), rng.gen_range(1..1000)))
                        .collect()
                })
                .collect(),
        })
        .collect()
}

/// Sequential interpretation: the final expected memory.
pub fn interpret(phases: &[Phase], threads: u32) -> (Vec<u64>, Vec<u64>) {
    let mut slots = vec![0u64; (threads as u64 * SLOTS_PER_THREAD) as usize];
    let mut accs = vec![0u64; ACCUMULATORS as usize];
    for phase in phases {
        for (tid, writes) in phase.writes.iter().enumerate() {
            for &(slot, value) in writes {
                slots[tid * SLOTS_PER_THREAD as usize + slot as usize] = value;
            }
        }
        for adds in &phase.adds {
            for &(acc, delta) in adds {
                accs[acc as usize] += delta;
            }
        }
    }
    (slots, accs)
}

/// Run a generated program on the full DSM and read back the final memory.
/// Returns the slot values, accumulator values, and the run's report; the
/// caller keeps the `Samhita` handle (passed in) for trace extraction.
pub fn run_on_dsm(
    sys: &Samhita,
    phases: &[Phase],
    threads: u32,
) -> (Vec<u64>, Vec<u64>, RunReport) {
    let slots = sys.alloc_global(threads as u64 * SLOTS_PER_THREAD * 8);
    let accs = sys.alloc_global(ACCUMULATORS * 8);
    let lock = sys.create_mutex();
    let barrier = sys.create_barrier(threads);
    let phases = phases.to_vec();
    let report = sys.run(threads, move |ctx| {
        let tid = ctx.tid() as usize;
        let base = slots + ctx.tid() as u64 * SLOTS_PER_THREAD * 8;
        for phase in &phases {
            for &(slot, value) in &phase.writes[tid] {
                ctx.write_u64(base + slot * 8, value);
            }
            ctx.lock(lock);
            for &(acc, delta) in &phase.adds[tid] {
                let v = ctx.read_u64(accs + acc * 8);
                ctx.write_u64(accs + acc * 8, v + delta);
            }
            ctx.unlock(lock);
            ctx.barrier(barrier);
            // Mid-program check: accumulators are already coherent here, but
            // their values depend on phase interleaving only through the
            // (commutative) sums — spot-check reads do not disturb the
            // protocol.
            let _ = ctx.read_u64(accs);
        }
    });
    let mut slot_bytes = vec![0u8; (threads as u64 * SLOTS_PER_THREAD * 8) as usize];
    sys.read_global(slots, &mut slot_bytes);
    let got_slots =
        slot_bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
    let mut acc_bytes = vec![0u8; (ACCUMULATORS * 8) as usize];
    sys.read_global(accs, &mut acc_bytes);
    let got_accs =
        acc_bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
    (got_slots, got_accs, report)
}

/// Convenience: build a system from `cfg`, run, and return final memory.
/// (Not every test binary that compiles this shared module uses it.)
#[allow(dead_code)]
pub fn run_on_fresh_dsm(
    cfg: SamhitaConfig,
    phases: &[Phase],
    threads: u32,
) -> (Vec<u64>, Vec<u64>) {
    let sys = Samhita::new(cfg);
    let (slots, accs, _) = run_on_dsm(&sys, phases, threads);
    (slots, accs)
}
