//! End-to-end tests of the three-strategy allocator: placement per size
//! class, free/reuse, arena isolation, overflow behaviour.

use samhita_repro::core::{Region, Samhita, SamhitaConfig};

fn system() -> Samhita {
    Samhita::new(SamhitaConfig::small_for_tests())
}

#[test]
fn size_classes_route_to_the_right_regions() {
    let sys = system();
    let cfg = sys.config().clone();
    let layout = *sys.layout();
    sys.run(1, |ctx| {
        // Strategy 1: small -> this thread's arena.
        let small = ctx.alloc(cfg.small_threshold, 8);
        assert_eq!(layout.region_of(small), Region::Arena(0));
        // Strategy 2: medium -> manager's shared zone.
        let medium = ctx.alloc(cfg.small_threshold + 1, 8);
        assert_eq!(layout.region_of(medium), Region::Shared);
        // Strategy 3: large -> striped region, line-aligned.
        let large = ctx.alloc(cfg.large_threshold, 8);
        assert_eq!(layout.region_of(large), Region::Striped);
        assert_eq!(large % layout.line_bytes, 0);
        ctx.free(small);
        ctx.free(medium);
        ctx.free(large);
    });
}

#[test]
fn arenas_isolate_threads_from_false_sharing_by_construction() {
    let sys = system();
    let layout = *sys.layout();
    let page = sys.config().page_size as u64;
    let barrier = sys.create_barrier(4);
    let probe = sys.alloc_global(4 * 8);
    sys.run(4, |ctx| {
        let a = ctx.alloc(256, 8);
        // Publish each thread's first page number through shared memory.
        assert_eq!(layout.region_of(a), Region::Arena(ctx.tid()));
        ctx.write_u64(probe + ctx.tid() as u64 * 8, a / page);
        ctx.barrier(barrier);
        // No two arenas may share a page (or a line).
        let mine = ctx.read_u64(probe + ctx.tid() as u64 * 8);
        for t in 0..4 {
            if t != ctx.tid() as u64 {
                let theirs = ctx.read_u64(probe + t * 8);
                assert_ne!(mine, theirs, "arena pages collide");
            }
        }
    });
}

#[test]
fn freed_memory_is_reused() {
    let sys = system();
    sys.run(1, |ctx| {
        // Arena reuse.
        let a = ctx.alloc(512, 8);
        ctx.free(a);
        let b = ctx.alloc(512, 8);
        assert_eq!(a, b, "first-fit must reuse the freed arena block");
        // Shared-zone reuse through the manager.
        let big = sys_shared_size();
        let c = ctx.alloc(big, 8);
        ctx.free(c);
        let d = ctx.alloc(big, 8);
        assert_eq!(c, d, "manager must reuse the freed shared block");
        ctx.free(b);
        ctx.free(d);
    });
}

fn sys_shared_size() -> u64 {
    SamhitaConfig::small_for_tests().small_threshold + 4096
}

#[test]
fn any_thread_may_free_manager_allocations() {
    let sys = system();
    let barrier = sys.create_barrier(2);
    let mailbox = sys.alloc_global(8);
    sys.run(2, |ctx| {
        if ctx.tid() == 0 {
            let addr = ctx.alloc(sys_shared_size(), 8);
            ctx.write_u64(mailbox, addr);
        }
        ctx.barrier(barrier);
        if ctx.tid() == 1 {
            let addr = ctx.read_u64(mailbox);
            ctx.free(addr); // cross-thread free of a shared-zone block
        }
    });
}

#[test]
#[should_panic(expected = "arena allocation")]
fn freeing_another_threads_arena_block_panics() {
    let sys = system();
    let barrier = sys.create_barrier(2);
    let mailbox = sys.alloc_global(8);
    sys.run(2, |ctx| {
        if ctx.tid() == 0 {
            let addr = ctx.alloc(64, 8);
            ctx.write_u64(mailbox, addr);
        }
        ctx.barrier(barrier);
        if ctx.tid() == 1 {
            let addr = ctx.read_u64(mailbox);
            ctx.free(addr); // not ours: must panic
        }
    });
}

#[test]
fn arena_overflow_spills_to_the_shared_zone() {
    let sys = system();
    let cfg = sys.config().clone();
    let layout = *sys.layout();
    sys.run(1, |ctx| {
        // Exhaust the (1 MiB test) arena with small allocations, then keep
        // allocating: the allocator must fall back to the manager rather
        // than fail.
        let chunk = cfg.small_threshold;
        let mut spilled = false;
        for _ in 0..(cfg.arena_bytes_per_thread / chunk + 4) {
            let a = ctx.alloc(chunk, 8);
            if layout.region_of(a) == Region::Shared {
                spilled = true;
                break;
            }
        }
        assert!(spilled, "arena exhaustion must overflow to the shared zone");
    });
}

#[test]
fn allocations_are_usable_across_their_whole_extent() {
    let sys = system();
    sys.run(1, |ctx| {
        let large = sys.config().large_threshold;
        let a = ctx.alloc(large, 8);
        // Touch first/last words of a striped allocation (different homes
        // when striping across servers).
        ctx.write_u64(a, 1);
        ctx.write_u64(a + large - 8, 2);
        assert_eq!(ctx.read_u64(a), 1);
        assert_eq!(ctx.read_u64(a + large - 8), 2);
        ctx.free(a);
    });
}

#[test]
fn striped_allocations_spread_across_servers() {
    let cfg = SamhitaConfig {
        mem_servers: 2,
        topology: samhita_repro::core::TopologyKind::Cluster { nodes: 8 },
        ..SamhitaConfig::small_for_tests()
    };
    let line = cfg.line_bytes() as u64;
    let sys = Samhita::new(cfg);
    let a = sys.alloc_global(sys.config().large_threshold);
    // Write one word into each of the first 8 lines, then check both
    // servers did work.
    sys.run(1, move |ctx| {
        for l in 0..8u64 {
            ctx.write_u64(a + l * line, l);
        }
    });
    let stats = sys.shutdown();
    assert_eq!(stats.servers.len(), 2);
    for (i, s) in stats.servers.iter().enumerate() {
        assert!(
            s.line_fetches + s.diffs_applied + s.fine_updates > 0,
            "server {i} saw no traffic: striping is broken"
        );
    }
}
