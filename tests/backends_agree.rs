//! The shared-code-base property: every kernel computes the same answer on
//! the native "pthreads" backend and on Samhita, across configurations —
//! topologies, fabrics, consistency variants, eviction pressure. This is
//! the paper's claim that "existing shared memory code can run using
//! Samhita/RegC with trivial code modification", tested as program
//! equivalence.

use samhita_repro::core::{ConsistencyVariant, FabricProfile, SamhitaConfig, TopologyKind};
use samhita_repro::kernels::{
    expected_gsum, run_jacobi, run_md, run_micro, serial_reference_jacobi, serial_reference_md,
    AllocMode, JacobiParams, MdParams, MicroParams,
};
use samhita_repro::rt::{NativeRt, SamhitaRt};

fn configs_under_test() -> Vec<(&'static str, SamhitaConfig)> {
    vec![
        ("paper cluster", SamhitaConfig::default()),
        ("tiny pages", SamhitaConfig::small_for_tests()),
        (
            "hetero node / SCIF",
            SamhitaConfig {
                topology: TopologyKind::HeteroNode { coprocessors: 2, cores_per_cop: 8 },
                fabric: FabricProfile::Scif,
                ..SamhitaConfig::default()
            },
        ),
        (
            "single node + bypass",
            SamhitaConfig {
                topology: TopologyKind::SingleNode,
                manager_bypass: true,
                ..SamhitaConfig::default()
            },
        ),
        (
            "whole-page consistency",
            SamhitaConfig {
                consistency: ConsistencyVariant::WholePage,
                ..SamhitaConfig::small_for_tests()
            },
        ),
        (
            "no prefetch, tiny cache",
            SamhitaConfig {
                prefetch: false,
                cache_capacity_lines: 4,
                ..SamhitaConfig::small_for_tests()
            },
        ),
        (
            "two memory servers",
            SamhitaConfig {
                mem_servers: 2,
                topology: TopologyKind::Cluster { nodes: 6 },
                ..SamhitaConfig::default()
            },
        ),
    ]
}

#[test]
fn micro_benchmark_gsum_matches_on_every_configuration() {
    for (name, cfg) in configs_under_test() {
        for mode in [AllocMode::Local, AllocMode::Global, AllocMode::GlobalStrided] {
            let p = MicroParams { n_outer: 3, m_inner: 2, s_rows: 2, b_cols: 36, mode, threads: 4 };
            let rt = SamhitaRt::new(cfg.clone());
            let r = run_micro(&rt, &p);
            let expected = expected_gsum(&p);
            let rel = (r.gsum - expected).abs() / expected.abs();
            assert!(rel < 1e-9, "[{name}] {mode:?}: gsum {} vs {expected}", r.gsum);
        }
    }
}

#[test]
fn jacobi_grid_matches_serial_reference_on_every_configuration() {
    let reference = serial_reference_jacobi(18, 5);
    for (name, cfg) in configs_under_test() {
        let rt = SamhitaRt::new(cfg);
        let r = run_jacobi(&rt, &JacobiParams { n: 18, iters: 5, threads: 3 });
        assert_eq!(r.grid, reference, "[{name}] grid diverged");
    }
}

#[test]
fn md_trajectory_matches_serial_reference_on_every_configuration() {
    let p = MdParams { n: 32, steps: 3, dt: 1e-3, threads: 4, seed: 11 };
    let reference = serial_reference_md(&p);
    for (name, cfg) in configs_under_test() {
        let rt = SamhitaRt::new(cfg);
        let r = run_md(&rt, &p);
        assert_eq!(r.positions, reference, "[{name}] trajectory diverged");
    }
}

#[test]
fn native_and_samhita_agree_at_every_thread_count() {
    for threads in [1u32, 2, 3, 4, 8] {
        let p = MicroParams {
            n_outer: 2,
            m_inner: 3,
            s_rows: 2,
            b_cols: 40,
            mode: AllocMode::Global,
            threads,
        };
        let native = run_micro(&NativeRt::default(), &p).gsum;
        let samhita = run_micro(&SamhitaRt::new(SamhitaConfig::default()), &p).gsum;
        let rel = (native - samhita).abs() / native.abs();
        assert!(rel < 1e-9, "{threads} threads: {native} vs {samhita}");
    }
}

#[test]
fn md_energies_agree_between_backends() {
    let p = MdParams { n: 48, steps: 4, dt: 1e-3, threads: 4, seed: 3 };
    let native = run_md(&NativeRt::default(), &p);
    let samhita = run_md(&SamhitaRt::new(SamhitaConfig::default()), &p);
    // Positions are bitwise-deterministic; the mutex-protected energy sums
    // may differ in accumulation order only.
    assert_eq!(native.positions, samhita.positions);
    assert!((native.kinetic - samhita.kinetic).abs() / native.kinetic.abs() < 1e-12);
    assert!((native.potential - samhita.potential).abs() / native.potential.abs() < 1e-12);
}

#[test]
fn jacobi_residual_identical_across_backends_single_thread() {
    let p = JacobiParams { n: 22, iters: 7, threads: 1 };
    let native = run_jacobi(&NativeRt::default(), &p);
    let samhita = run_jacobi(&SamhitaRt::new(SamhitaConfig::default()), &p);
    assert_eq!(native.final_diff, samhita.final_diff);
    assert_eq!(native.grid, samhita.grid);
}
