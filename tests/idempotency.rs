//! Property test: no protocol cache ever double-applies.
//!
//! Three layers of idempotency machinery protect the DSM against
//! retransmissions: the memory servers' bounded dedup cache (a replayed
//! update batch re-acks without re-applying any part), the primary
//! manager's replay cache (a retried acquire can never double-acquire),
//! and the standby's replay cache reconstructed from the shipped log (a
//! request the primary already served is re-answered, never re-applied,
//! after a failover). This suite samples arbitrary interleavings of
//! duplicates, drops, delays, server crashes, and manager crashes over
//! randomized lock/barrier programs, and holds two oracles against every
//! run: the final memory must equal the sequential interpretation (a
//! double-applied accumulator update would break the sum), and the traced
//! protocol timeline must satisfy the RegC invariant checker, whose
//! diff-byte conservation identity catches a double-applied batch on the
//! server side even when the value happens to survive.

mod common;

use common::{generate, interpret, run_on_dsm};
use proptest::prelude::*;
use samhita_repro::core::{FaultConfig, Samhita, SamhitaConfig, TopologyKind};

/// Build the six-node replicated cluster with the sampled fault schedule.
/// Manager crashes require the hot standby; it is only enabled when the
/// schedule can use it, so the plain configurations also stay covered.
fn cluster(faults: FaultConfig) -> SamhitaConfig {
    SamhitaConfig {
        manager_standby: faults.mgr_crash.is_some(),
        mem_servers: 2,
        replica_offset: 1,
        topology: TopologyKind::Cluster { nodes: 6 },
        tracing: true,
        faults,
        ..SamhitaConfig::default()
    }
}

proptest! {
    /// Arbitrary dup/drop/delay mixes, with one of four crash shapes laid
    /// on top: none, a memory-server crash, a manager crash, or both.
    #[test]
    fn caches_never_double_apply_under_dup_retry_and_failover(
        seed in 1u64..1 << 48,
        drop_pm in 0u32..100,     // ‰ drop rate: 0–10%
        dup_pm in 0u32..200,      // ‰ duplicate rate: 0–20%
        delay_pm in 0u32..100,    // ‰ delay rate: 0–10%
        crash_kind in 0u32..4,
        crash_at in 20_000u64..90_000,
        threads in 2u32..5,
    ) {
        let mut faults = FaultConfig::lossy(
            seed,
            f64::from(drop_pm) / 1000.0,
            f64::from(dup_pm) / 1000.0,
            f64::from(delay_pm) / 1000.0,
            4_000,
        );
        // Crash server 1 (the replicated data home) and/or the primary
        // manager mid-run, so dup/retry interleavings cross the failover.
        if crash_kind & 1 != 0 {
            faults.crash = Some((1, crash_at));
        }
        if crash_kind & 2 != 0 {
            faults.mgr_crash = Some(crash_at + 7_000);
        }
        let phases = generate(seed, threads, 3);
        let (want_slots, want_accs) = interpret(&phases, threads);
        let sys = Samhita::new(cluster(faults));
        let (slots, accs, report) = run_on_dsm(&sys, &phases, threads);

        // Value oracle: a double-applied lock-protected update would break
        // the accumulator sums; a double-applied ordinary write batch could
        // resurrect an overwritten slot value.
        prop_assert_eq!(slots, want_slots, "slots diverged (seed {seed}, crash {crash_kind})");
        prop_assert_eq!(accs, want_accs, "accumulators diverged (seed {seed}, crash {crash_kind})");
        if crash_kind & 2 != 0 {
            // The manager crash landed mid-run only if some thread re-homed;
            // either way the run completed and both oracles held. When it
            // did land, the failover must have been counted exactly once
            // per re-homed thread.
            prop_assert!(report.mgr_failovers() <= u64::from(threads));
        }

        // Conservation oracle: every diff byte a client flushed was applied
        // exactly once server-side; every fine-grain update notice matches
        // an application. A replayed batch that re-applied any part would
        // break these identities even where the value oracle cannot see it.
        let trace = sys.take_trace().expect("tracing was enabled");
        let summary = trace.check_invariants().unwrap_or_else(|e| {
            panic!("seed {seed} crash {crash_kind}: RegC invariant violated: {e:?}")
        });
        prop_assert!(summary.diff_bytes > 0, "the run must have flushed (and conserved) diffs");
    }
}
