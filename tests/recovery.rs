//! Manager crash recovery: the replicated manager state machine under fire.
//!
//! Every mutation the primary manager applies is a typed log record shipped
//! (write-ahead, same virtual instant as the response) to a hot standby on
//! another node. These tests crash the primary mid-run and demand that the
//! clients' retry/failover path re-homes to the standby, that the standby's
//! replayed state answers every in-flight and future request, and that the
//! application cannot tell: final shared-memory contents bit-identical to a
//! fault-free run, every RegC invariant intact, and the whole recovered
//! execution itself bit-reproducible under the deterministic scheduler.

mod common;

use common::{generate, interpret, run_on_dsm};
use samhita_repro::core::{FaultConfig, Samhita, SamhitaConfig, TopologyKind};
use samhita_repro::kernels::{
    run_jacobi, run_md, run_micro, serial_reference_jacobi, AllocMode, JacobiParams, MdParams,
    MicroParams,
};
use samhita_repro::rt::SamhitaRt;
use samhita_repro::trace::{EventKind, TrackId};

/// The paper's six-node cluster with a hot-standby manager configured:
/// node 0 manager, nodes 1–2 memory servers, compute on 3–5, standby on
/// the last compute node (5) so a manager-node crash cannot take it too.
fn standby_cluster() -> SamhitaConfig {
    SamhitaConfig {
        manager_standby: true,
        mem_servers: 2,
        replica_offset: 1,
        topology: TopologyKind::Cluster { nodes: 6 },
        ..SamhitaConfig::default()
    }
}

/// The standby cluster with the primary manager crashing at `at_ns`
/// (virtual). From that instant every envelope into or out of the primary
/// is dropped; only the host's reliable control plane still reaches it.
fn mgr_crash(at_ns: u64) -> SamhitaConfig {
    SamhitaConfig {
        faults: FaultConfig { mgr_crash: Some(at_ns), ..FaultConfig::default() },
        ..standby_cluster()
    }
}

const JACOBI_P8: JacobiParams = JacobiParams { n: 16, iters: 4, threads: 8 };
const JACOBI_P64: JacobiParams = JacobiParams { n: 64, iters: 2, threads: 64 };

fn micro_params() -> MicroParams {
    MicroParams {
        n_outer: 4,
        m_inner: 2,
        s_rows: 2,
        b_cols: 32,
        mode: AllocMode::Global,
        threads: 3,
    }
}

#[test]
fn jacobi_p8_survives_a_manager_crash_bit_identically() {
    let baseline = run_jacobi(&SamhitaRt::new(standby_cluster()), &JACOBI_P8);
    assert_eq!(baseline.grid, serial_reference_jacobi(JACOBI_P8.n, JACOBI_P8.iters));
    let r = run_jacobi(&SamhitaRt::new(mgr_crash(60_000)), &JACOBI_P8);
    assert_eq!(r.grid, baseline.grid, "manager crash perturbed the Jacobi grid at P=8");
    assert!(r.report.mgr_failovers() > 0, "the crash must drive threads to the standby");
    assert!(r.report.takeover_ns > 0, "the standby must have taken over");
    assert!(r.report.standby_serves > 0, "the standby must have served requests");
    assert!(r.report.log_records_shipped > 0, "the primary must have shipped its log");
}

#[test]
fn jacobi_p64_survives_a_manager_crash_bit_identically() {
    let baseline = run_jacobi(&SamhitaRt::new(standby_cluster()), &JACOBI_P64);
    assert_eq!(baseline.grid, serial_reference_jacobi(JACOBI_P64.n, JACOBI_P64.iters));
    let r = run_jacobi(&SamhitaRt::new(mgr_crash(60_000)), &JACOBI_P64);
    assert_eq!(r.grid, baseline.grid, "manager crash perturbed the Jacobi grid at P=64");
    assert!(r.report.mgr_failovers() > 0, "the crash must drive threads to the standby");
    assert!(r.report.standby_serves > 0, "the standby must have served requests");
}

#[test]
fn micro_gsum_survives_a_manager_crash_bit_identically() {
    let baseline = run_micro(&SamhitaRt::new(standby_cluster()), &micro_params());
    let r = run_micro(&SamhitaRt::new(mgr_crash(20_000)), &micro_params());
    assert_eq!(
        r.gsum.to_bits(),
        baseline.gsum.to_bits(),
        "manager crash perturbed the micro-benchmark sum: {} != {}",
        r.gsum,
        baseline.gsum
    );
    assert!(r.report.mgr_failovers() > 0, "the crash must drive threads to the standby");
}

#[test]
fn md_positions_survive_a_manager_crash_bit_identically() {
    let p = MdParams { n: 24, steps: 4, dt: 1e-3, threads: 8, seed: 42 };
    let baseline = run_md(&SamhitaRt::new(standby_cluster()), &p);
    let r = run_md(&SamhitaRt::new(mgr_crash(60_000)), &p);
    assert_eq!(
        r.positions, baseline.positions,
        "manager crash perturbed the MD trajectory (positions must be bit-identical)"
    );
    assert!(r.report.mgr_failovers() > 0, "the crash must drive threads to the standby");
}

#[test]
fn random_program_survives_a_manager_crash_at_p8_and_p64() {
    for (threads, crash_ns) in [(8u32, 50_000u64), (64, 50_000)] {
        let phases = generate(97, threads, 4);
        let (want_slots, want_accs) = interpret(&phases, threads);
        let sys = Samhita::new(mgr_crash(crash_ns));
        let (slots, accs, report) = run_on_dsm(&sys, &phases, threads);
        assert_eq!(slots, want_slots, "P={threads}: slots diverged after manager failover");
        assert_eq!(accs, want_accs, "P={threads}: accumulators diverged after manager failover");
        assert!(
            report.mgr_failovers() > 0,
            "P={threads}: the crash must drive threads to the standby"
        );
    }
}

#[test]
fn recovered_run_is_bit_reproducible_and_passes_the_invariant_checker() {
    let observe = || {
        let cfg = SamhitaConfig { tracing: true, ..mgr_crash(60_000) };
        let rt = SamhitaRt::new(cfg);
        let r = run_jacobi(&rt, &JACOBI_P8);
        let trace = rt.take_trace().expect("tracing was enabled");
        (format!("{:?}", r.report), trace)
    };
    let (report_a, trace_a) = observe();
    let (report_b, trace_b) = observe();
    assert_eq!(report_a, report_b, "a recovered run must reproduce bit-identically");
    assert_eq!(trace_a.checksum(), trace_b.checksum(), "trace checksums must match across runs");

    // The recovered protocol timeline still satisfies every RegC invariant
    // (lock intervals now span primary-served acquires and standby-served
    // releases; diff-byte conservation spans the failover).
    let summary = trace_a.check_invariants().expect("recovered timeline must satisfy RegC");
    assert!(summary.diff_bytes > 0, "the run must have flushed (and conserved) diffs");

    // The failover is visible in the trace: threads record the re-home,
    // and the standby's track carries real serves after the takeover.
    let failovers = (0..JACOBI_P8.threads)
        .filter_map(|t| trace_a.track(TrackId::Thread(t)))
        .flatten()
        .filter(|e| matches!(e.kind, EventKind::MgrFailover { .. }))
        .count();
    assert!(failovers > 0, "no thread traced a MgrFailover event");
    let standby = trace_a.track(TrackId::MgrStandby).unwrap_or(&[]);
    assert!(
        standby.iter().any(|e| matches!(e.kind, EventKind::MgrServe { .. })),
        "the standby track must carry post-takeover serves"
    );
}

#[test]
fn fault_free_standby_ships_the_log_but_never_takes_over() {
    // With a standby configured but no crash, the log is shipped and the
    // standby stays a silent replica: no takeover, no serves, no reclaims —
    // and the application result is still exactly the serial reference.
    let r = run_jacobi(&SamhitaRt::new(standby_cluster()), &JACOBI_P8);
    assert_eq!(r.grid, serial_reference_jacobi(JACOBI_P8.n, JACOBI_P8.iters));
    assert!(r.report.log_records_shipped > 0, "the primary must ship its log");
    assert_eq!(r.report.mgr_failovers(), 0, "no thread may fail over without a crash");
    assert_eq!(r.report.takeover_ns, 0, "the standby must not take over without a crash");
    assert_eq!(r.report.standby_serves, 0, "the standby must not serve without a crash");
    assert_eq!(r.report.lease_reclaims, 0, "no lease may expire in a fault-free run");
}

#[test]
fn fault_free_probe_resends_are_absorbed_not_reapplied() {
    // A standby configuration arms the clients' grant-liveness probe even
    // in a fault-free run: any request whose grant is deferred past the
    // lease period re-sends its token. The live primary must absorb those
    // duplicates through replay protection — a re-applied probe would queue
    // the acquire twice and count the barrier arrival twice (releasing the
    // barrier before the peer arrives), silently corrupting synchronization.
    let cfg = SamhitaConfig {
        mgr_lease_ns: 20_000, // 20 µs leases: blocked waiters probe many times
        ..standby_cluster()
    };
    let sys = Samhita::new(cfg);
    let slot = sys.alloc_global(24);
    let lock = sys.create_mutex();
    let barrier = sys.create_barrier(2);
    let report = sys.run(2, move |ctx| {
        if ctx.tid() == 0 {
            // Hold the lock across ~100 µs of compute — several lease
            // periods — so thread 1's queued acquire probes repeatedly.
            ctx.lock(lock);
            ctx.write_u64(slot, 7);
            ctx.compute(300_000);
            ctx.unlock(lock);
            // Arrive at the barrier equally late: thread 1 waits (and
            // probes) there; a double-counted arrival would release it
            // before this thread ever arrives.
            ctx.compute(300_000);
            ctx.barrier(barrier);
        } else {
            // Let thread 0 take the lock first; the remaining ~80 µs of its
            // hold still spans several lease periods of blocked probing.
            ctx.compute(50_000);
            ctx.lock(lock);
            let v = ctx.read_u64(slot);
            ctx.write_u64(slot + 8, v + 1);
            ctx.unlock(lock);
            ctx.barrier(barrier);
            ctx.write_u64(slot + 16, 9);
        }
    });
    // The lock handed off exactly once, the barrier released exactly once,
    // and RegC propagated the holder's write to the queued waiter.
    let mut bytes = [0u8; 24];
    sys.read_global(slot, &mut bytes);
    assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), 7);
    assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 8);
    assert_eq!(u64::from_le_bytes(bytes[16..].try_into().unwrap()), 9);
    // Absorbing probes is the primary's job; the standby stays silent.
    assert_eq!(report.mgr_failovers(), 0, "no thread may fail over without a crash");
    assert_eq!(report.takeover_ns, 0, "the standby must not take over without a crash");
    assert_eq!(report.standby_serves, 0, "the standby must not serve without a crash");
    assert_eq!(report.lease_reclaims, 0, "a live primary's leases must not be reclaimed");
}

#[test]
fn expired_lease_is_reclaimed_and_the_stale_release_absorbed() {
    // Thread 0 takes a lock and disappears into a long compute phase — far
    // longer than the lease — while the primary crashes. Thread 1 keeps the
    // manager busy, fails over, and activates the standby, whose lease sweep
    // must reclaim thread 0's expired lock *in virtual time* (no wall-clock
    // timer anywhere). Thread 0's eventual release arrives stale and must be
    // absorbed (acknowledged, not applied). Nobody else touches thread 0's
    // data, so the final memory is still exact.
    let cfg = SamhitaConfig {
        tracing: true,
        mgr_lease_ns: 20_000, // 20 µs leases: expired long before the release
        faults: FaultConfig { mgr_crash: Some(30_000), ..FaultConfig::default() },
        ..standby_cluster()
    };
    let sys = Samhita::new(cfg);
    let slot = sys.alloc_global(16);
    let lock_a = sys.create_mutex();
    let lock_b = sys.create_mutex();
    let report = sys.run(2, move |ctx| {
        if ctx.tid() == 0 {
            ctx.lock(lock_a);
            ctx.write_u64(slot, 41);
            // ~14 ms of virtual compute: the lease (20 µs) expires, the
            // primary crashes, and the standby takes over meanwhile.
            ctx.compute(40_000_000);
            ctx.write_u64(slot + 8, 42);
            ctx.unlock(lock_a); // stale: the standby reclaimed this lease
        } else {
            // Keep manager traffic flowing so the crash is detected and the
            // standby activated well before thread 0 resurfaces.
            for _ in 0..40 {
                ctx.lock(lock_b);
                ctx.unlock(lock_b);
            }
        }
    });
    assert!(report.mgr_failovers() > 0, "the crash must drive thread 1 to the standby");
    assert_eq!(report.lease_reclaims, 1, "exactly one lease (thread 0's) must be reclaimed");
    assert_eq!(report.stale_releases, 1, "thread 0's late release must be absorbed as stale");

    let mut bytes = [0u8; 16];
    sys.read_global(slot, &mut bytes);
    assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), 41);
    assert_eq!(u64::from_le_bytes(bytes[8..].try_into().unwrap()), 42);

    let trace = sys.take_trace().expect("tracing was enabled");
    let standby = trace.track(TrackId::MgrStandby).unwrap_or(&[]);
    assert!(
        standby.iter().any(|e| matches!(e.kind, EventKind::LeaseReclaim { .. })),
        "the standby track must record the lease reclaim"
    );
    // The invariant checker knows a reclaim deposes the holder: the deposed
    // interval is truncated at the reclaim stamp instead of flagging the
    // stale release as a protocol violation.
    trace.check_invariants().expect("a reclaimed lease must keep the timeline consistent");
}
