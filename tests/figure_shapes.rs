//! Shape assertions for the reproduced figures, at reduced (CI) scale.
//!
//! The paper's qualitative claims are encoded as inequalities on the actual
//! harness output — who wins, how penalties order, where amortization
//! appears — so a regression that breaks an experimental conclusion fails
//! the test suite, not just the eyeball check.

use samhita_bench::ablations;
use samhita_bench::figures;
use samhita_bench::{FigureData, HarnessConfig};

fn quick() -> HarnessConfig {
    HarnessConfig::quick()
}

fn last_y(fig: &FigureData, label: &str) -> f64 {
    fig.series(label)
        .unwrap_or_else(|| panic!("missing series {label}"))
        .points
        .last()
        .expect("points")
        .1
}

fn first_y(fig: &FigureData, label: &str) -> f64 {
    fig.series(label).unwrap_or_else(|| panic!("missing series {label}")).points[0].1
}

#[test]
fn fig03_local_allocation_keeps_samhita_at_pthreads_compute() {
    // "In the absence of false sharing the time spent in computation for
    //  Samhita is very similar to the equivalent Pthread implementation."
    let fig = figures::fig03(&quick());
    for m in [1usize, 10] {
        let label = format!("smh, M={m}");
        for &(p, y) in &fig.series(&label).expect("series").points {
            assert!(
                (0.9..1.3).contains(&y),
                "local allocation must stay near 1.0: M={m}, P={p}, got {y}"
            );
        }
    }
}

#[test]
fn fig04_fig05_false_sharing_penalty_amortized_by_compute() {
    // "as we increase the amount of compute this cost is amortized"
    for fig in [figures::fig04(&quick()), figures::fig05(&quick())] {
        let m1 = last_y(&fig, "smh, M=1");
        let m10 = last_y(&fig, "smh, M=10");
        assert!(m1 > m10, "[{}] M=1 ({m1}) must exceed M=10 ({m10})", fig.id);
        assert!(m1 > 2.0, "[{}] M=1 must show a visible penalty, got {m1}", fig.id);
    }
}

#[test]
fn fig05_strided_access_is_worse_than_contiguous_global() {
    let g = figures::fig04(&quick());
    let s = figures::fig05(&quick());
    assert!(
        last_y(&s, "smh, M=1") > last_y(&g, "smh, M=1"),
        "strided access must increase false sharing over contiguous blocks"
    );
}

#[test]
fn fig06_local_compute_time_flat_in_cores_and_linear_in_s() {
    // "compute time per thread does not increase as the number of threads
    //  increases" (local allocation).
    let fig = figures::fig06(&quick());
    for s in [1usize, 2, 4] {
        let series = fig.series(&format!("S = {s}")).expect("series");
        let first = series.points[0].1;
        let last = series.points.last().expect("points").1;
        assert!(
            (last - first).abs() / first < 0.05,
            "S={s}: local compute must be flat in cores ({first} .. {last})"
        );
    }
    // Linear-ish in S: doubling S doubles compute.
    let s1 = first_y(&fig, "S = 1");
    let s4 = first_y(&fig, "S = 4");
    assert!((s4 / s1 - 4.0).abs() < 0.4, "S=4 must cost ~4x S=1, ratio {}", s4 / s1);
}

#[test]
fn fig08_strided_penalty_grows_with_s_and_cores() {
    let fig = figures::fig08(&quick());
    let s1 = last_y(&fig, "S = 1");
    let s4 = last_y(&fig, "S = 4");
    assert!(s4 > s1, "penalty must grow with S");
    let series = fig.series("S = 4").expect("series");
    assert!(
        series.points.last().expect("points").1 > series.points[0].1,
        "penalty must grow with cores"
    );
}

#[test]
fn fig09_mode_ordering_and_s1_equivalence() {
    // "When the number of blocks is one there is no difference in the
    //  access pattern between global and global strided allocations."
    //
    // At quick scale the global-vs-strided gap is comparable to the
    // queueing noise of the conservative-approximate model (manager and
    // memory servers serve requests in physical arrival order; DESIGN.md
    // §2), so a single run can invert the ordering. Assert on per-point
    // medians across repetitions instead of one sample.
    let runs: Vec<_> = (0..5).map(|_| figures::fig09(&quick())).collect();
    let med = |label: &str, pick: fn(&[(f64, f64)]) -> f64| -> f64 {
        let mut ys: Vec<f64> =
            runs.iter().map(|fig| pick(&fig.series(label).expect("series").points)).collect();
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ys[ys.len() / 2]
    };
    let first = |pts: &[(f64, f64)]| pts[0].1;
    let last = |pts: &[(f64, f64)]| pts.last().expect("pts").1;
    let g1 = med("global", first);
    let st1 = med("global strided", first);
    assert!((g1 - st1).abs() / g1 < 0.25, "global ({g1}) and strided ({st1}) must coincide at S=1");
    // local <= global <= strided at the largest S.
    let l = med("local", last);
    let g = med("global", last);
    let s = med("global strided", last);
    assert!(l < g, "local ({l}) must beat global ({g})");
    assert!(g < s * 1.05, "global ({g}) must beat strided ({s})");
}

#[test]
fn fig10_sync_time_local_lowest() {
    // "when there is no false sharing (local allocation) the increase in
    //  synchronization cost is hardly noticeable"
    let fig = figures::fig10(&quick());
    let local = last_y(&fig, "local");
    let strided = last_y(&fig, "global strided");
    assert!(local < strided, "local sync ({local}) must be below strided ({strided})");
}

#[test]
fn fig11_samhita_sync_costs_more_than_pthreads_but_not_dramatically() {
    let fig = figures::fig11(&quick());
    let pth = last_y(&fig, "pth_local");
    let smh = last_y(&fig, "smh_local");
    assert!(
        smh > 3.0 * pth,
        "DSM sync ops include consistency work and must cost well above pthreads"
    );
    assert!(smh < 1000.0 * pth, "\"Samhita's synchronization overhead is not exceptionally high\"");
    // And the growth with threads is "not dramatic": superlinear by less
    // than ~4x over the sweep.
    let series = &fig.series("smh_local").expect("series").points;
    let per_core_growth = series.last().expect("pts").1 / series[0].1;
    let core_growth = series.last().expect("pts").0 / series[0].0;
    assert!(per_core_growth < 4.0 * core_growth);
}

#[test]
fn fig13_md_scales_well_on_samhita() {
    let fig = figures::fig13(&quick());
    let smh = &fig.series("samhita").expect("series").points;
    // Individual points at quick scale carry queueing noise from the
    // conservative-approximate model (physical arrival order at the manager
    // and memory servers; DESIGN.md §2), so assert the scaling trend rather
    // than per-window monotonicity.
    let first = smh[0].1;
    let last = smh.last().expect("pts").1;
    assert!(last > 1.1, "MD must show parallel benefit at the largest P: {smh:?}");
    assert!(last > first * 1.2, "MD speed-up must grow over the sweep: {smh:?}");
    for pair in smh.windows(2) {
        assert!(pair[1].1 > pair[0].1 * 0.6, "MD speed-up must not collapse: {pair:?}");
    }
}

#[test]
fn ablation_scif_beats_verbs_proxy() {
    let fig = ablations::scif(&quick());
    let proxy = last_y(&fig, "verbs proxy");
    let scif = last_y(&fig, "SCIF (§V)");
    assert!(scif < proxy, "SCIF ({scif}) must beat the verbs proxy ({proxy})");
}

#[test]
fn ablation_bypass_reduces_sync_time() {
    let fig = ablations::bypass(&quick());
    let mgr = last_y(&fig, "manager RPCs");
    let byp = last_y(&fig, "local bypass (§V)");
    assert!(byp < mgr, "bypass ({byp}) must reduce sync time vs manager ({mgr})");
}

#[test]
fn ablation_finegrain_beats_whole_page_sync() {
    let fig = ablations::finegrain(&quick());
    let fine = last_y(&fig, "fine-grain (RegC)");
    let whole = last_y(&fig, "whole-page");
    assert!(fine < whole, "fine-grain ({fine}) must move less sync data than whole-page ({whole})");
}

#[test]
fn ablation_striping_relieves_hot_spots() {
    let fig = ablations::stripe(&quick());
    let pts = &fig.series[0].points;
    assert!(
        pts.last().expect("pts").1 < pts[0].1,
        "more memory servers must reduce hot-spot compute time: {pts:?}"
    );
}

#[test]
fn ablation_prefetch_helps_cold_streaming() {
    let fig = ablations::prefetch(&quick());
    let on = first_y(&fig, "prefetch on");
    let off = first_y(&fig, "prefetch off");
    assert!(on < off, "prefetch ({on}) must beat no-prefetch ({off}) on a cold stream");
}
