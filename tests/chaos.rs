//! Chaos suite: the DSM protocol under a deterministic hostile fabric.
//!
//! Every plan seeds drops, duplicates, and latency spikes (some add a timed
//! link partition or a mid-run memory-server crash), runs the Figure 2
//! micro-benchmark and the Jacobi kernel, and demands results **bit
//! identical** to a fault-free run of the same configuration: recovery is
//! only correct if applications cannot tell it happened. The suite also
//! pins the negative: an inactive fault schedule leaves virtual clocks
//! exactly reproducible, and a traced faulty run still satisfies every
//! RegC protocol invariant.

use samhita_repro::core::{FaultConfig, PartitionSpec, SamhitaConfig, TopologyKind};
use samhita_repro::kernels::{
    run_jacobi, run_micro, serial_reference_jacobi, AllocMode, JacobiParams, MicroParams,
};
use samhita_repro::rt::SamhitaRt;

/// Two write-through-replicated memory servers on the paper's six-node
/// cluster: node 0 manager, nodes 1–2 memory servers, compute on nodes 3–5.
/// Every chaos plan runs under this geometry (crash plans need the replica).
fn replicated_cluster() -> SamhitaConfig {
    SamhitaConfig {
        mem_servers: 2,
        replica_offset: 1,
        topology: TopologyKind::Cluster { nodes: 6 },
        ..SamhitaConfig::default()
    }
}

/// The seeded fault plans. Drop rates reach 10%; the partition window
/// (200 µs) stays under the total backoff budget (~1.6 ms over 8
/// attempts), so a retrying RPC always survives to the heal; the crash
/// plans kill one of the two servers early enough to land mid-run.
fn plans() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("drop-light", FaultConfig::lossy(0xA1, 0.01, 0.0, 0.0, 0)),
        ("drop-heavy", FaultConfig::lossy(0xA2, 0.10, 0.0, 0.0, 0)),
        ("duplicates", FaultConfig::lossy(0xA3, 0.0, 0.08, 0.0, 0)),
        ("delays", FaultConfig::lossy(0xA4, 0.0, 0.0, 0.10, 5_000)),
        ("mixed", FaultConfig::lossy(0xA5, 0.05, 0.02, 0.05, 3_000)),
        ("drop-dup", FaultConfig::lossy(0xA6, 0.08, 0.04, 0.0, 0)),
        (
            // Sever compute node 3 from memory-server node 1 for 200 µs.
            "partition",
            FaultConfig {
                partitions: vec![PartitionSpec { a: 3, b: 1, from_ns: 20_000, until_ns: 220_000 }],
                ..FaultConfig::lossy(0xA7, 0.02, 0.0, 0.0, 0)
            },
        ),
        (
            "crash-primary",
            FaultConfig {
                crash: Some((0, 50_000)),
                ..FaultConfig::lossy(0xA8, 0.02, 0.01, 0.02, 2_000)
            },
        ),
        (
            "crash-other",
            FaultConfig { crash: Some((1, 80_000)), ..FaultConfig::lossy(0xA9, 0.05, 0.0, 0.0, 0) },
        ),
    ]
}

fn micro_params() -> MicroParams {
    MicroParams {
        n_outer: 4,
        m_inner: 2,
        s_rows: 2,
        b_cols: 32,
        mode: AllocMode::Global,
        threads: 3,
    }
}

const JACOBI: JacobiParams = JacobiParams { n: 12, iters: 4, threads: 3 };

#[test]
fn chaos_plans_cover_every_fault_class() {
    let plans = plans();
    assert!(plans.len() >= 8, "the suite promises at least eight seeded plans");
    assert!(plans.iter().any(|(_, f)| f.drop_p >= 0.10), "drop rates must reach 10%");
    assert!(plans.iter().any(|(_, f)| !f.partitions.is_empty()));
    assert!(plans.iter().any(|(_, f)| f.crash.is_some()));
    for (name, f) in &plans {
        assert!(f.is_active(), "plan {name} injects nothing");
        let cfg = SamhitaConfig { faults: f.clone(), ..replicated_cluster() };
        cfg.validate().unwrap_or_else(|e| panic!("plan {name} invalid: {e}"));
    }
}

#[test]
fn micro_gsum_is_bit_identical_under_every_plan() {
    // Every round adds the same addend per thread, so the lock-ordered sum
    // is order-independent and the comparison can be exact.
    let baseline = run_micro(&SamhitaRt::new(replicated_cluster()), &micro_params()).gsum;
    for (name, faults) in plans() {
        let cfg = SamhitaConfig { faults, ..replicated_cluster() };
        let rt = SamhitaRt::new(cfg);
        let r = run_micro(&rt, &micro_params());
        assert_eq!(
            r.gsum.to_bits(),
            baseline.to_bits(),
            "plan {name}: gsum {} != fault-free {}",
            r.gsum,
            baseline
        );
    }
}

#[test]
fn jacobi_grid_is_bit_identical_under_every_plan() {
    let baseline = run_jacobi(&SamhitaRt::new(replicated_cluster()), &JACOBI).grid;
    assert_eq!(baseline, serial_reference_jacobi(JACOBI.n, JACOBI.iters));
    for (name, faults) in plans() {
        let cfg = SamhitaConfig { faults, ..replicated_cluster() };
        let rt = SamhitaRt::new(cfg);
        let r = run_jacobi(&rt, &JACOBI);
        assert_eq!(r.grid, baseline, "plan {name} perturbed the Jacobi grid");
    }
}

#[test]
fn faults_are_injected_and_recovered_from() {
    // The lossy plans must actually exercise the machinery: faults injected
    // on the fabric, retries observed by threads; and a crash plan must
    // drive at least one failover to the replica.
    let run = |faults: FaultConfig| {
        let cfg = SamhitaConfig { faults, ..replicated_cluster() };
        run_jacobi(&SamhitaRt::new(cfg), &JACOBI).report
    };
    let lossy = run(plans()[1].1.clone()); // drop-heavy
    assert!(lossy.fabric.total_drops() > 0, "10% drop plan injected nothing");
    assert!(lossy.total_of(|t| t.retries) > 0, "drops must force retries");

    // Jacobi's arrays home on server 1, so crashing it severs the threads'
    // primary data path and every thread must re-home to the replica.
    // (Crashing server 0 — the other plan — instead exercises abandoning
    // write-through to a dead replica, which is deliberately not a failover.)
    let crashed = run(plans()[8].1.clone()); // crash-other: server 1
    assert!(
        crashed.total_of(|t| t.failovers) > 0,
        "a mid-run server crash must drive failovers to the replica"
    );
}

#[test]
fn traced_faulty_run_passes_the_invariant_checker() {
    let (_, faults) = plans().remove(4); // mixed: drops + dups + delays
    let cfg = SamhitaConfig { tracing: true, faults, ..replicated_cluster() };
    let rt = SamhitaRt::new(cfg);
    run_jacobi(&rt, &JACOBI);
    let trace = rt.take_trace().expect("tracing was enabled");
    let summary = trace
        .check_invariants()
        .expect("RegC invariants must hold on the recovered protocol timeline");
    assert!(summary.diff_bytes > 0, "the run must have flushed (and conserved) diffs");
}

/// Batched-path plans. Sync-time flushes travel as one `UpdateBatch` per
/// destination memory server, so these seeds stress exactly that message
/// class: losing a whole batch, replaying one, delaying one past the
/// retransmission window, and crashing a server while batches are bound
/// for it. The dedup cache must treat a batch as one idempotent unit — a
/// replayed batch re-acks without re-applying *any* of its parts.
fn batch_plans() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("batch-drop", FaultConfig::lossy(0xB1, 0.15, 0.0, 0.0, 0)),
        ("batch-dup", FaultConfig::lossy(0xB2, 0.0, 0.20, 0.0, 0)),
        ("batch-delay", FaultConfig::lossy(0xB3, 0.0, 0.0, 0.25, 8_000)),
        (
            // Crash memory server 1 (Jacobi's home) mid-run, with losses on
            // top, so in-flight batches die with it and must re-home.
            "batch-crash",
            FaultConfig {
                crash: Some((1, 60_000)),
                ..FaultConfig::lossy(0xB4, 0.12, 0.10, 0.0, 0)
            },
        ),
    ]
}

#[test]
fn batched_flushes_survive_batch_level_faults() {
    let micro_base = run_micro(&SamhitaRt::new(replicated_cluster()), &micro_params()).gsum;
    let jacobi_base = run_jacobi(&SamhitaRt::new(replicated_cluster()), &JACOBI).grid;
    for (name, faults) in batch_plans() {
        let cfg = SamhitaConfig { faults, ..replicated_cluster() };
        let m = run_micro(&SamhitaRt::new(cfg.clone()), &micro_params());
        assert_eq!(
            m.gsum.to_bits(),
            micro_base.to_bits(),
            "plan {name}: micro gsum diverged under batch-level faults"
        );
        let j = run_jacobi(&SamhitaRt::new(cfg), &JACOBI);
        assert_eq!(j.grid, jacobi_base, "plan {name} perturbed the Jacobi grid");
        assert!(j.report.fabric.total_faults() > 0, "plan {name} injected nothing");
    }
}

#[test]
fn duplicated_batches_are_one_idempotent_unit() {
    // A 20% duplicate rate replays whole batches. The server must re-ack a
    // replay without re-applying any part — and the trace checker verifies
    // exactly that: a double-applied batch would double its server-side
    // ApplyDiff/ApplyFine bytes and break diff-byte conservation.
    let (_, faults) = batch_plans().remove(1);
    let cfg = SamhitaConfig { tracing: true, faults, ..replicated_cluster() };
    let rt = SamhitaRt::new(cfg);
    let r = run_jacobi(&rt, &JACOBI);
    assert!(r.report.fabric.total_dups() > 0, "the duplicate plan injected nothing");
    let trace = rt.take_trace().expect("tracing was enabled");
    let summary = trace.check_invariants().expect("a replayed batch must not re-apply its parts");
    assert!(summary.diff_bytes > 0, "the run must have flushed (and conserved) diffs");
}

#[test]
fn server_crash_mid_batch_fails_over_and_keeps_invariants() {
    let (_, faults) = batch_plans().remove(3);
    let cfg = SamhitaConfig { tracing: true, faults, ..replicated_cluster() };
    let rt = SamhitaRt::new(cfg);
    let r = run_jacobi(&rt, &JACOBI);
    assert!(
        r.report.total_of(|t| t.failovers) > 0,
        "crashing server 1 must re-home its batches to the replica"
    );
    let trace = rt.take_trace().expect("tracing was enabled");
    trace.check_invariants().expect("batched failover must preserve every RegC invariant");
}

/// Seeded fault plans for the deterministic-scheduler scale suite
/// (P ∈ {8, 64}): a heavy drop plan, a mid-run crash of memory server 1
/// (Jacobi's home, so the crash forces failovers at every thread count),
/// and a mixed drop+dup plan.
fn scale_plans() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("scale-drop", FaultConfig::lossy(0xC1, 0.08, 0.0, 0.0, 0)),
        (
            "scale-crash",
            FaultConfig { crash: Some((1, 70_000)), ..FaultConfig::lossy(0xC2, 0.03, 0.0, 0.0, 0) },
        ),
        ("scale-drop-dup", FaultConfig::lossy(0xC3, 0.05, 0.03, 0.0, 0)),
    ]
}

/// Jacobi sized so every thread owns at least one interior row: the P=8
/// shape is the suite's historical one; P=64 widens the grid and shortens
/// the sweep to keep runtime bounded.
fn scale_jacobi(threads: u32) -> JacobiParams {
    if threads <= 16 {
        JacobiParams { n: 16, iters: 4, threads }
    } else {
        JacobiParams { n: 64, iters: 2, threads }
    }
}

#[test]
fn scaled_faulty_runs_match_fault_free_results_and_reproduce_bit_identically() {
    // P=8 and P=64 compute threads under the deterministic scheduler: every
    // seeded fault plan must (a) leave the computed grid bit-identical to
    // the fault-free run — applications cannot tell recovery happened — and
    // (b) itself be bit-reproducible: two runs of the same plan produce
    // byte-identical reports, virtual timing and fabric counters included.
    for threads in [8u32, 64] {
        let p = scale_jacobi(threads);
        let baseline = run_jacobi(&SamhitaRt::new(replicated_cluster()), &p);
        assert_eq!(baseline.grid, serial_reference_jacobi(p.n, p.iters));
        for (name, faults) in scale_plans() {
            let cfg = SamhitaConfig { faults, ..replicated_cluster() };
            let a = run_jacobi(&SamhitaRt::new(cfg.clone()), &p);
            assert_eq!(a.grid, baseline.grid, "plan {name} perturbed the grid at P={threads}");
            assert!(a.report.fabric.total_faults() > 0, "plan {name} injected nothing");
            let b = run_jacobi(&SamhitaRt::new(cfg), &p);
            assert_eq!(
                format!("{:?}", a.report),
                format!("{:?}", b.report),
                "plan {name}: a seeded faulty P={threads} run must reproduce bit-identically"
            );
        }
    }
}

#[test]
fn scaled_faulty_runs_pass_the_invariant_checker() {
    for threads in [8u32, 64] {
        let p = scale_jacobi(threads);
        for (name, faults) in scale_plans() {
            let cfg = SamhitaConfig { tracing: true, faults, ..replicated_cluster() };
            let rt = SamhitaRt::new(cfg);
            let r = run_jacobi(&rt, &p);
            if name == "scale-crash" {
                assert!(
                    r.report.total_of(|t| t.failovers) > 0,
                    "crashing server 1 mid-run must drive failovers at P={threads}"
                );
            }
            let trace = rt.take_trace().expect("tracing was enabled");
            let summary = trace.check_invariants().unwrap_or_else(|e| {
                panic!("plan {name} broke a RegC invariant at P={threads}: {e:?}")
            });
            assert!(summary.diff_bytes > 0, "plan {name}: the run must have flushed diffs");
        }
    }
}

#[test]
fn inactive_fault_schedule_stays_bit_deterministic() {
    // FaultConfig::default() must leave the virtual-time simulation exactly
    // as it was before fault injection existed: clocks reproducible bit for
    // bit across runs (P=1: no scheduling freedom at all).
    let run = || {
        let p = MicroParams { threads: 1, ..micro_params() };
        let r = run_micro(&SamhitaRt::new(SamhitaConfig::default()), &p);
        assert_eq!(r.report.fabric.total_faults(), 0);
        assert_eq!(r.report.total_of(|t| t.retries), 0);
        (r.gsum.to_bits(), r.report.makespan, r.report.threads[0].sync)
    };
    assert_eq!(run(), run(), "inactive faults must not perturb virtual time");
}
