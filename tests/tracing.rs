//! End-to-end checks of the event-tracing subsystem: export validity, the
//! RegC invariant checker on real kernel traces, and — the load-bearing
//! property — that enabling tracing does not move any virtual clock.

use samhita_repro::core::{Samhita, SamhitaConfig};
use samhita_repro::kernels::{run_jacobi, run_micro, AllocMode, JacobiParams, MicroParams};
use samhita_repro::rt::SamhitaRt;
use samhita_repro::trace::{validate_json, HotspotMap, MetricsTimeline, TrackId};

fn traced_cfg() -> SamhitaConfig {
    SamhitaConfig { tracing: true, ..SamhitaConfig::small_for_tests() }
}

#[test]
fn traced_run_exports_valid_chrome_json_and_jsonl() {
    let rt = SamhitaRt::new(SamhitaConfig { tracing: true, ..SamhitaConfig::default() });
    let p = MicroParams::paper(2, 2, AllocMode::Global, 4);
    run_micro(&rt, &p);
    let trace = rt.take_trace().expect("tracing enabled");
    assert!(!trace.is_empty(), "a false-sharing run must record events");

    let chrome = trace.to_chrome_json();
    validate_json(&chrome).expect("Chrome export must be valid JSON");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("thread_name"), "tracks need Perfetto name metadata");

    for line in trace.to_jsonl().lines() {
        validate_json(line).expect("every JSONL line must be valid JSON");
    }
}

#[test]
fn trace_covers_threads_and_services() {
    let rt = SamhitaRt::new(traced_cfg());
    run_micro(&rt, &MicroParams::paper(1, 1, AllocMode::Global, 2));
    let trace = rt.take_trace().expect("tracing enabled");
    for id in [
        TrackId::Thread(0),
        TrackId::Thread(1),
        TrackId::Manager,
        TrackId::MemServer(0),
        TrackId::Fabric,
    ] {
        assert!(
            trace.track(id).is_some_and(|evs| !evs.is_empty()),
            "expected events on track {id:?}"
        );
    }
}

#[test]
fn invariants_hold_on_example_kernels() {
    for mode in [AllocMode::Local, AllocMode::Global, AllocMode::GlobalStrided] {
        let rt = SamhitaRt::new(SamhitaConfig { tracing: true, ..SamhitaConfig::default() });
        run_micro(&rt, &MicroParams::paper(2, 2, mode, 4));
        let trace = rt.take_trace().expect("tracing enabled");
        let summary = trace
            .check_invariants()
            .unwrap_or_else(|v| panic!("micro/{mode:?} violated invariants: {v:?}"));
        assert!(summary.lock_holds > 0, "micro kernel takes the gsum lock");
        assert!(summary.barrier_episodes > 0);
    }

    let rt = SamhitaRt::new(SamhitaConfig { tracing: true, ..SamhitaConfig::default() });
    run_jacobi(&rt, &JacobiParams { n: 62, iters: 4, threads: 4 });
    let trace = rt.take_trace().expect("tracing enabled");
    let summary =
        trace.check_invariants().unwrap_or_else(|v| panic!("jacobi violated invariants: {v:?}"));
    assert!(summary.barrier_episodes > 0, "jacobi is barrier-synchronized");
}

/// The acceptance bar for "tracing is observational": with one compute
/// thread the simulation is fully deterministic (DESIGN.md §2), so the
/// makespan — and every per-thread stat — must be bit-identical with
/// tracing on and off.
#[test]
fn tracing_does_not_perturb_virtual_clocks() {
    let run = |tracing: bool| {
        let rt = SamhitaRt::new(SamhitaConfig { tracing, ..SamhitaConfig::default() });
        run_micro(&rt, &MicroParams::paper(5, 2, AllocMode::Global, 1)).report
    };
    let plain = run(false);
    let traced = run(true);
    assert_eq!(plain.makespan, traced.makespan, "tracing moved the virtual clock");
    for (a, b) in plain.threads.iter().zip(&traced.threads) {
        assert_eq!(a.total, b.total);
        assert_eq!(a.sync, b.sync);
        assert_eq!(a.fetch_latency, b.fetch_latency, "histograms are tracing-independent");
        assert_eq!(a.lock_wait, b.lock_wait);
        assert_eq!(a.barrier_wait, b.barrier_wait);
    }
}

#[test]
fn report_surfaces_latency_histograms_and_ratios() {
    let rt = SamhitaRt::new(SamhitaConfig::default());
    let report = run_micro(&rt, &MicroParams::paper(2, 2, AllocMode::Global, 4)).report;
    // Histograms are always on — no tracing flag needed.
    assert!(report.fetch_latency().count() > 0, "a DSM run has fetch stalls");
    assert!(report.lock_wait().count() > 0, "the gsum lock is taken");
    assert!(report.barrier_wait().count() > 0);
    assert!(report.fetch_latency().p50_ns() <= report.fetch_latency().p99_ns());
    let f = report.sync_fraction();
    assert!(f > 0.0 && f < 1.0, "sync fraction {f} out of range");
    assert!(report.compute_imbalance() >= 1.0, "max/mean is at least 1");
}

/// The metrics layer inherits tracing's bit-identity guarantee: the
/// timeline and hotspot map are derived *after the fact* from the event
/// stream and the always-on counters, so enabling them (= enabling tracing)
/// must not move any virtual clock, and the derived views must agree
/// exactly with the run's own statistics.
#[test]
fn metrics_derivation_is_observational_and_conserves_counters() {
    let run = |tracing: bool| {
        let rt = SamhitaRt::new(SamhitaConfig { tracing, ..SamhitaConfig::default() });
        let report = run_micro(&rt, &MicroParams::paper(5, 2, AllocMode::Global, 1)).report;
        (report, rt.take_trace())
    };
    let (plain, no_trace) = run(false);
    assert!(no_trace.is_none());
    let (traced, trace) = run(true);
    let trace = trace.expect("tracing enabled");

    // P=1 bit-identity with metrics enabled vs. disabled.
    assert_eq!(plain.makespan, traced.makespan, "metrics collection moved the virtual clock");
    assert_eq!(plain.hotspots(), traced.hotspots(), "always-on hotspot counters diverged");
    assert_eq!(plain.mgr_busy_ns, traced.mgr_busy_ns);
    assert_eq!(plain.server_busy_ns, traced.server_busy_ns);

    // Conservation: the timeline's bucket totals equal the run's counters.
    let cfg = SamhitaConfig::default();
    let width = MetricsTimeline::bucket_width_for(traced.makespan.as_ns(), 16);
    let timeline = MetricsTimeline::from_trace(&trace, width, &cfg.service_costs());
    let totals = timeline.totals();
    assert_eq!(totals.misses, traced.total_of(|t| t.line_misses));
    assert_eq!(totals.refetches, traced.total_of(|t| t.page_refetches));
    assert_eq!(totals.invalidations, traced.total_of(|t| t.invalidations));
    assert_eq!(totals.diff_bytes, traced.total_of(|t| t.diff_bytes_flushed));
    assert_eq!(totals.fine_bytes, traced.total_of(|t| t.fine_bytes_flushed));
    // The fabric track also covers pre-run control traffic (registration,
    // allocation), so it bounds the run's own traffic from above.
    assert!(totals.fabric_bytes >= traced.fabric.total_bytes());
    // Same for service busy time: event-derived busy covers host setup too.
    assert!(totals.mgr_busy_ns >= traced.mgr_busy_ns);
    assert!(totals.server_busy_ns >= traced.server_busy_ns.iter().sum::<u64>());

    // The trace-derived hotspot map agrees with the always-on counters.
    assert_eq!(HotspotMap::from_trace(&trace), traced.hotspots());

    // And the timeline exports valid JSON with a human summary.
    validate_json(&timeline.to_json()).expect("timeline JSON must validate");
    assert!(timeline.summary().contains("intervals"));
}

#[test]
fn take_trace_is_none_without_tracing_and_drains_when_on() {
    let sys = Samhita::new(SamhitaConfig::small_for_tests());
    assert!(sys.take_trace().is_none(), "tracing off: no trace");

    let sys = Samhita::new(traced_cfg());
    let addr = sys.alloc_global(1024);
    sys.run(1, |ctx| {
        for i in 0..64 {
            ctx.write_f64(addr + i * 8, i as f64);
        }
    });
    let first = sys.take_trace().expect("tracing on");
    assert!(!first.is_empty());
    // A second drain starts from a clean window: thread buffers were taken.
    let second = sys.take_trace().expect("tracing on");
    assert!(second.track(TrackId::Thread(0)).is_none_or(|evs| evs.is_empty()));
}
