//! Determinism at scale: under the virtual-time scheduler (the default
//! runtime), repeated runs of the same randomized parallel program are
//! bit-identical — not just in computed values but in every virtual-time
//! statistic and in the full protocol event timeline — at P = 2, 8, and 64
//! simulated cores.
//!
//! This is the property DESIGN.md §12 promises: event delivery and every
//! blocking point (locks, barriers, fetches, flushes) are ordered by
//! `(virtual_time, seeded tie-break)` alone, so wall-clock scheduling of
//! the underlying OS threads can never leak into results.

mod common;

use common::{generate, interpret, run_on_dsm};
use samhita_repro::core::{Samhita, SamhitaConfig};

const PHASES: usize = 5;

fn scale_config() -> SamhitaConfig {
    SamhitaConfig { tracing: true, max_threads: 64, ..SamhitaConfig::small_for_tests() }
}

/// One full observation of a run: final memory, the report's complete debug
/// form (per-thread stats, histograms, fabric counters, makespan), and the
/// trace checksum. Equality of two observations is bit-identity of the runs.
fn observe(seed: u64, threads: u32) -> (Vec<u64>, Vec<u64>, String, u64) {
    let phases = generate(seed, threads, PHASES);
    let sys = Samhita::new(scale_config());
    let (slots, accs, report) = run_on_dsm(&sys, &phases, threads);
    let trace = sys.take_trace().expect("tracing was enabled");
    (slots, accs, format!("{report:?}"), trace.checksum())
}

#[test]
fn random_programs_reproduce_bit_identically_at_p2_p8_p64() {
    for threads in [2u32, 8, 64] {
        for seed in [11u64, 12] {
            let a = observe(seed, threads);
            let b = observe(seed, threads);
            assert_eq!(
                a.2, b.2,
                "P={threads} seed {seed}: makespan/stats must be bit-identical across runs"
            );
            assert_eq!(a.3, b.3, "P={threads} seed {seed}: trace checksums must match across runs");
            // And the values are not merely reproducible but correct.
            let phases = generate(seed, threads, PHASES);
            let (want_slots, want_accs) = interpret(&phases, threads);
            assert_eq!(a.0, want_slots, "P={threads} seed {seed}: slots diverged");
            assert_eq!(a.1, want_accs, "P={threads} seed {seed}: accumulators diverged");
        }
    }
}

#[test]
fn scheduler_seed_changes_tie_breaks_not_results() {
    // Two different scheduler seeds may order same-virtual-time events
    // differently (so traces can differ), but the computed memory must not:
    // determinism is a scheduling property, correctness a protocol one.
    let threads = 8u32;
    let phases = generate(21, threads, PHASES);
    let (want_slots, want_accs) = interpret(&phases, threads);
    for sched_seed in [0u64, 1, 0xfeed] {
        let sys = Samhita::new(SamhitaConfig { sched_seed, ..scale_config() });
        let (slots, accs, _) = run_on_dsm(&sys, &phases, threads);
        assert_eq!(slots, want_slots, "sched_seed {sched_seed}: slots diverged");
        assert_eq!(accs, want_accs, "sched_seed {sched_seed}: accumulators diverged");
    }
}
