//! The observability layer's tentpole invariant: host-side profiling is
//! *provably invisible* to virtual time. Running with the profiler enabled
//! must produce bit-identical virtual results — run report, trace
//! checksum, and the full serialized `BenchReport` (whose `host` section
//! `from_run` never populates) — at P = 1, 8, and 64. The host section
//! itself lives outside the determinism fingerprint: `RunReport` carries
//! its wall time in a Debug-redacted `HostNanos`, so the debug-string
//! comparison the determinism suites rely on cannot see the host clock.

use std::sync::Mutex;

use samhita_bench::{BenchReport, HostSummary};
use samhita_repro::core::{RunReport, SamhitaConfig};
use samhita_repro::kernels::{run_jacobi, JacobiParams};
use samhita_repro::prof;
use samhita_repro::rt::SamhitaRt;

/// The profiler's counters are process-global; serialize every test that
/// toggles them so parallel test threads cannot interleave enable/reset.
static PROF_LOCK: Mutex<()> = Mutex::new(());

fn config() -> SamhitaConfig {
    SamhitaConfig { tracing: true, max_threads: 64, ..SamhitaConfig::small_for_tests() }
}

/// One full observation of a jacobi run: the report (Debug form covers every
/// virtual-time statistic), the trace checksum, and the serialized
/// `BenchReport`. Caller controls whether the profiler is live.
fn observe(threads: u32, profiled: bool) -> (RunReport, String, u64, String) {
    let cfg = config();
    let rt = SamhitaRt::new(cfg.clone());
    let p = JacobiParams { n: 64, iters: 2, threads };
    prof::reset();
    prof::enable(profiled);
    let report = run_jacobi(&rt, &p).report;
    let trace = rt.take_trace().expect("tracing was enabled");
    let bench =
        BenchReport::from_run("jacobi", &format!("{p:?}"), &cfg, threads, &report, Some(&trace));
    prof::enable(false);
    let debug = format!("{report:?}");
    (report, debug, trace.checksum(), bench.to_json())
}

#[test]
fn profiling_is_invisible_to_virtual_results_at_p1_p8_p64() {
    let _guard = PROF_LOCK.lock().unwrap();
    for threads in [1u32, 8, 64] {
        let (_, debug_off, checksum_off, json_off) = observe(threads, false);
        let (_, debug_on, checksum_on, json_on) = observe(threads, true);
        assert_eq!(
            debug_off, debug_on,
            "P={threads}: run report must be bit-identical with profiling on vs off"
        );
        assert_eq!(
            checksum_off, checksum_on,
            "P={threads}: trace checksum must be identical with profiling on vs off"
        );
        assert_eq!(
            json_off, json_on,
            "P={threads}: serialized BenchReport must be byte-identical with profiling on vs off"
        );
    }
}

#[test]
fn host_wall_clock_is_excluded_from_the_determinism_fingerprint() {
    let _guard = PROF_LOCK.lock().unwrap();
    // Two profiled runs: wall clocks inevitably differ, yet the Debug form
    // the determinism suites compare must not — HostNanos redacts itself.
    let (report_a, debug_a, _, _) = observe(8, true);
    let (report_b, debug_b, _, _) = observe(8, true);
    assert!(report_a.host_wall_ns.get() > 0, "run() must stamp a host wall time");
    assert!(report_b.host_wall_ns.get() > 0);
    assert_eq!(debug_a, debug_b, "host wall time leaked into the determinism fingerprint");
    assert!(
        debug_a.contains("HostNanos(<host>)"),
        "HostNanos must redact its value in Debug output"
    );
}

#[test]
fn host_summary_attaches_with_real_phase_data_and_round_trips() {
    let _guard = PROF_LOCK.lock().unwrap();
    let cfg = config();
    let rt = SamhitaRt::new(cfg.clone());
    let p = JacobiParams { n: 64, iters: 2, threads: 8 };
    prof::reset();
    prof::enable(true);
    let report = run_jacobi(&rt, &p).report;
    let trace = rt.take_trace().expect("tracing was enabled");
    // Keep the profiler live through report construction so the
    // span-graph/critpath build phase is captured, as bench-report does.
    let bench = BenchReport::from_run("jacobi", &format!("{p:?}"), &cfg, 8, &report, Some(&trace));
    prof::enable(false);
    assert!(bench.host.is_none(), "from_run must never populate the host section");

    let events = report.fabric.total_msgs();
    let host = HostSummary::from_prof(&prof::snapshot(), report.host_wall_ns.get(), events);
    assert_eq!(host.events, events);
    assert!(host.wall_ns > 0);
    assert!(host.ns_per_event > 0.0);
    let names: Vec<&str> = host.phases.iter().map(|p| p.name.as_str()).collect();
    for want in
        ["sched_step", "regc_diff", "batch_apply", "channel_send", "trace_event", "span_graph"]
    {
        assert!(names.contains(&want), "missing phase {want:?} in {names:?}");
    }
    assert!(
        host.phases.iter().any(|p| p.name == "span_graph" && p.calls > 0),
        "critpath/span-graph build during from_run must be attributed"
    );

    let with = bench.with_host(host);
    let parsed = BenchReport::from_json(&with.to_json()).expect("host-bearing report parses");
    assert_eq!(parsed.to_json(), with.to_json(), "host section must survive a JSON round trip");
}
