//! End-to-end checks of the causal observability layer: the virtual-time
//! critical path must tile the makespan *exactly* on every kernel at every
//! thread count, the span graph must be a monotone DAG, per-thread time
//! conservation must hold on arbitrary generated programs, and the whole
//! layer must be post-hoc — extracting it leaves the trace checksum and
//! every virtual-time quantity bit-identical.

mod common;

use samhita_bench::{thread_windows, BenchReport};
use samhita_repro::core::{RunReport, Samhita, SamhitaConfig};
use samhita_repro::kernels::{
    run_jacobi, run_md, run_micro, AllocMode, JacobiParams, MdParams, MicroParams,
};
use samhita_repro::rt::SamhitaRt;
use samhita_repro::trace::{critical_path, validate_json, RunTrace, SpanGraph};

fn traced(sched_seed: u64) -> SamhitaConfig {
    SamhitaConfig { tracing: true, sched_seed, ..SamhitaConfig::default() }
}

/// Run one kernel at CI scale with tracing on and hand back both views.
fn run_kernel(kernel: &str, threads: u32, sched_seed: u64) -> (RunReport, RunTrace) {
    let rt = SamhitaRt::new(traced(sched_seed));
    let report = match kernel {
        "micro" => run_micro(&rt, &MicroParams::paper(2, 2, AllocMode::Global, threads)).report,
        "md" => run_md(&rt, &MdParams { n: 256, steps: 2, ..MdParams::paper(256, threads) }).report,
        "jacobi" => run_jacobi(&rt, &JacobiParams { n: 126, iters: 4, threads }).report,
        other => panic!("unknown kernel {other}"),
    };
    let trace = rt.take_trace().expect("tracing enabled");
    (report, trace)
}

/// The headline acceptance criterion: the critical path's class totals sum
/// to the run makespan exactly — integer nanoseconds, no residue — on all
/// three kernels at P ∈ {1, 8, 64}.
#[test]
fn critical_path_length_equals_makespan_on_all_kernels() {
    let costs = SamhitaConfig::default().service_costs();
    for kernel in ["micro", "jacobi", "md"] {
        for p in [1u32, 8, 64] {
            let (report, trace) = run_kernel(kernel, p, 0);
            let cp = critical_path(&trace, &thread_windows(&report), &costs);
            assert_eq!(
                cp.total_ns(),
                cp.makespan_ns,
                "{kernel} P={p}: class totals must tile the makespan exactly"
            );
            assert_eq!(
                cp.makespan_ns,
                report.makespan.as_ns(),
                "{kernel} P={p}: the path anchors at the run's own makespan"
            );
            assert!(!cp.segments.is_empty(), "{kernel} P={p}: a run has a non-empty path");
            // Segments are contiguous in virtual time walking backwards.
            for s in &cp.segments {
                assert!(s.start_ns < s.end_ns, "{kernel} P={p}: empty segment on the path");
            }
        }
    }
}

/// The span graph is causally well-formed: every edge flows forward in
/// virtual time, and the zero-delay subgraph (where a cycle could hide) is
/// a DAG.
#[test]
fn span_graph_is_acyclic_with_monotone_edges() {
    let costs = SamhitaConfig::default().service_costs();
    for (kernel, p) in [("jacobi", 8u32), ("micro", 4), ("md", 8)] {
        let (report, trace) = run_kernel(kernel, p, 0);
        let g = SpanGraph::build(&trace, &thread_windows(&report), &costs);
        assert!(!g.spans.is_empty(), "{kernel}: graph has spans");
        assert!(!g.edges.is_empty(), "{kernel}: graph has causal edges");
        g.check_monotone().unwrap_or_else(|e| panic!("{kernel} P={p}: non-monotone edge: {e}"));
        assert!(g.is_acyclic(), "{kernel} P={p}: zero-delay causality must be acyclic");
    }
}

/// Property test on generated programs: for every thread, compute + the
/// five wait classes + scheduler idle equals the makespan — the
/// conservation identity behind the `run_summary` breakdown line.
#[test]
fn per_thread_time_conservation_on_random_programs() {
    for seed in 0..8u64 {
        let threads = 2 + (seed % 4) as u32 * 2; // 2, 4, 6, 8
        let phases = common::generate(seed, threads, 3);
        let sys = Samhita::new(SamhitaConfig::small_for_tests());
        let (slots, accs, report) = common::run_on_dsm(&sys, &phases, threads);
        let (want_slots, want_accs) = common::interpret(&phases, threads);
        assert_eq!(slots, want_slots, "seed {seed}: wrong memory");
        assert_eq!(accs, want_accs, "seed {seed}: wrong accumulators");

        let makespan = report.makespan.as_ns();
        for t in &report.threads {
            let b = t.breakdown(report.makespan);
            assert_eq!(
                b.sum_ns(),
                makespan,
                "seed {seed} tid {}: compute {} + waits {} + idle {} != makespan {makespan}",
                t.tid,
                b.compute_ns,
                b.wait_ns(),
                b.idle_ns
            );
            assert_eq!(b.total_ns + b.idle_ns, makespan, "seed {seed} tid {}", t.tid);
        }
        // The aggregate breakdown inherits the identity, P-fold.
        let agg = report.wait_breakdown();
        assert_eq!(agg.sum_ns(), makespan * threads as u64, "seed {seed}: aggregate");
    }
}

/// The critical-path report is a pure function of the (deterministic) run:
/// byte-identical across repeated runs, at every `sched_seed`. Different
/// seeds explore different *legal* interleavings of virtual-time ties —
/// they may move the makespan, but each seed's report is exactly
/// reproducible and tiles its own makespan exactly.
#[test]
fn critical_path_report_is_byte_identical_across_runs_at_every_seed() {
    let costs = SamhitaConfig::default().service_costs();
    let render = |sched_seed: u64| {
        let (report, trace) = run_kernel("jacobi", 8, sched_seed);
        let cp = critical_path(&trace, &thread_windows(&report), &costs);
        assert_eq!(cp.total_ns(), cp.makespan_ns, "seed {sched_seed}: exact tiling");
        let json = cp.to_json(10);
        validate_json(&json).expect("critpath JSON must validate");
        json
    };
    for seed in [0u64, 1, 7, 42] {
        assert_eq!(render(seed), render(seed), "sched_seed {seed}: report must be reproducible");
    }
}

/// The whole layer is observational: building the span graph, extracting
/// the critical path, and exporting flow events are read-only (the trace
/// checksum is untouched), and the bench report's virtual-time fields are
/// bit-identical whether or not the trace-derived sections are computed.
#[test]
fn observability_layer_is_post_hoc_and_checksum_stable() {
    let cfg = traced(0);
    let costs = cfg.service_costs();
    let (report, trace) = run_kernel("micro", 4, 0);
    let before = trace.checksum();
    let windows = thread_windows(&report);

    let g = SpanGraph::build(&trace, &windows, &costs);
    let cp = critical_path(&trace, &windows, &costs);
    let chrome = trace.to_chrome_json_with(&windows, &costs);
    validate_json(&chrome).expect("causal Chrome export must be valid JSON");
    assert!(chrome.contains("\"ph\":\"s\""), "flow-start events present");
    assert!(chrome.contains("\"ph\":\"f\""), "flow-finish events present");
    assert!(!g.spans.is_empty() && cp.makespan_ns > 0);
    assert_eq!(trace.checksum(), before, "extraction must be read-only");

    let with = BenchReport::from_run("micro", "t", &cfg, 4, &report, Some(&trace));
    let without = BenchReport::from_run("micro", "t", &cfg, 4, &report, None);
    assert_eq!(with.makespan_ns, without.makespan_ns);
    assert_eq!(with.sync_fraction, without.sync_fraction);
    assert_eq!(with.mgr_utilization, without.mgr_utilization);
    assert_eq!(with.server_utilization, without.server_utilization);
    assert_eq!(with.breakdown, without.breakdown);
    assert_eq!(with.queue, without.queue);
    assert!(with.critical_path.is_some(), "trace given: critical path present");
    assert!(without.critical_path.is_none(), "no trace: section absent, fields unchanged");
}
