//! The batching acceptance property, asserted on a real protocol trace:
//! every sync-time flush sends **at most one** update message per
//! destination memory server — message count per sync operation is
//! O(servers), not O(dirty pages).
//!
//! The thread track records one `BatchFlush { server, .. }` per update
//! message sent, stamped *before* the sync marker (`LockRequest`,
//! `LockRelease`, `BarrierArrive`) of the operation that flushed it. So
//! splitting a thread's event stream into windows at those markers and
//! counting `BatchFlush` events per server inside each window checks the
//! property exactly — for every sync operation of every thread.

use std::collections::BTreeMap;

use samhita_repro::core::{SamhitaConfig, TopologyKind};
use samhita_repro::kernels::{run_jacobi, run_micro, AllocMode, JacobiParams, MicroParams};
use samhita_repro::rt::SamhitaRt;
use samhita_repro::trace::{EventKind, TrackId};

/// A multi-server cluster so the per-server split is actually exercised
/// (page homes stripe across two servers), with tracing on and the default
/// cache capacity (no evictions: eviction batches are not sync flushes and
/// would muddy the windows).
fn traced_cluster() -> SamhitaConfig {
    SamhitaConfig {
        mem_servers: 2,
        topology: TopologyKind::Cluster { nodes: 6 },
        tracing: true,
        ..SamhitaConfig::default()
    }
}

/// Split one thread's events into sync windows and count update messages
/// per server in each; panic on the first window that sends two messages
/// to the same server. Returns (windows with at least one flush, total
/// batch messages).
fn check_thread_windows(tid: u32, events: &[samhita_repro::trace::TraceEvent]) -> (u64, u64) {
    let mut per_server: BTreeMap<u32, u64> = BTreeMap::new();
    let mut windows_with_flush = 0u64;
    let mut total_batches = 0u64;
    let mut window = 0u64;
    for e in events {
        match &e.kind {
            EventKind::BatchFlush { server, parts, bytes } => {
                assert!(*parts > 0, "thread {tid}: empty batch sent to server {server}");
                assert!(*bytes > 0);
                total_batches += 1;
                let n = per_server.entry(*server).or_default();
                *n += 1;
                assert!(
                    *n <= 1,
                    "thread {tid}, sync window {window}: {n} update messages \
                     to server {server} — flushes must coalesce to one"
                );
            }
            // Sync markers close the window that their flush populated.
            EventKind::LockRequest { .. }
            | EventKind::LockRelease { .. }
            | EventKind::BarrierArrive { .. } => {
                if !per_server.is_empty() {
                    windows_with_flush += 1;
                }
                per_server.clear();
                window += 1;
            }
            _ => {}
        }
    }
    (windows_with_flush, total_batches)
}

#[test]
fn flush_all_sends_at_most_one_message_per_server_per_sync_op() {
    let cfg = traced_cluster();
    let rt = SamhitaRt::new(cfg);
    run_jacobi(&rt, &JacobiParams { n: 24, iters: 4, threads: 3 });
    let trace = rt.take_trace().expect("tracing was enabled");

    let mut flush_windows = 0u64;
    let mut batches = 0u64;
    let mut threads = 0u32;
    for (track, events) in &trace.tracks {
        let TrackId::Thread(tid) = *track else { continue };
        threads += 1;
        let (w, b) = check_thread_windows(tid, events);
        flush_windows += w;
        batches += b;
    }
    assert_eq!(threads, 3, "every compute thread must contribute a track");
    assert!(flush_windows > 0, "a Jacobi run must flush at sync operations");
    assert!(batches > 0, "flushes must travel as update batches");
}

#[test]
fn false_sharing_flushes_coalesce_across_pages() {
    // The micro benchmark in Global mode is the paper's false-sharing
    // worst case: several threads dirty several pages between every sync
    // op. Exactly the workload where per-page messages exploded.
    let cfg = traced_cluster();
    let rt = SamhitaRt::new(cfg);
    let p = MicroParams {
        n_outer: 3,
        m_inner: 4,
        s_rows: 2,
        b_cols: 96,
        mode: AllocMode::Global,
        threads: 3,
    };
    run_micro(&rt, &p);
    let trace = rt.take_trace().expect("tracing was enabled");

    let mut multi_part = false;
    for (track, events) in &trace.tracks {
        let TrackId::Thread(tid) = *track else { continue };
        check_thread_windows(tid, events);
        multi_part |= events
            .iter()
            .any(|e| matches!(e.kind, EventKind::BatchFlush { parts, .. } if parts > 1));
    }
    assert!(
        multi_part,
        "a false-sharing run must coalesce several per-page updates into one batch"
    );
}
