//! Cross-crate integration tests of the RegC consistency protocol on the
//! full system: multiple writers, lock-carried fine-grain updates,
//! invalidation-driven refetch, eviction under pressure — observed end to
//! end through real compute threads, the manager, and the memory servers.

use samhita_repro::core::{
    ConsistencyVariant, EvictionPolicy, Samhita, SamhitaConfig, TopologyKind,
};

fn small() -> SamhitaConfig {
    SamhitaConfig::small_for_tests()
}

#[test]
fn multiple_writers_of_one_page_merge_at_the_home() {
    // Four threads write disjoint quarters of ONE page concurrently in an
    // ordinary region; after the barrier everyone sees all four quarters —
    // the multiple-writer protocol end to end.
    let sys = Samhita::new(small());
    let page_bytes = sys.config().page_size as u64;
    let addr = sys.alloc_global(page_bytes);
    let barrier = sys.create_barrier(4);
    sys.run(4, |ctx| {
        let quarter = page_bytes / 4;
        let mine = addr + ctx.tid() as u64 * quarter;
        let fill = vec![ctx.tid() as u8 + 1; quarter as usize];
        ctx.write_bytes(mine, &fill);
        ctx.barrier(barrier);
        for t in 0..4u64 {
            let mut buf = vec![0u8; quarter as usize];
            ctx.read_bytes(addr + t * quarter, &mut buf);
            assert!(
                buf.iter().all(|&b| b == t as u8 + 1),
                "thread {} sees partial quarter {t}",
                ctx.tid()
            );
        }
    });
}

#[test]
fn lock_protected_counter_is_exact_under_heavy_contention() {
    let sys = Samhita::new(small());
    let counter = sys.alloc_global(8);
    let lock = sys.create_mutex();
    const THREADS: u32 = 8;
    const ITERS: u64 = 50;
    sys.run(THREADS, |ctx| {
        for _ in 0..ITERS {
            ctx.lock(lock);
            let v = ctx.read_u64(counter);
            ctx.write_u64(counter, v + 1);
            ctx.unlock(lock);
        }
    });
    let mut buf = [0u8; 8];
    sys.read_global(counter, &mut buf);
    assert_eq!(u64::from_le_bytes(buf), THREADS as u64 * ITERS);
}

#[test]
fn fine_grain_updates_travel_with_the_lock_without_refetch() {
    // A ping-pong over one lock-protected word: with update-carrying
    // notices, the receiving cache applies the bytes in place instead of
    // invalidating and refetching the page.
    let sys = Samhita::new(small());
    let word = sys.alloc_global(8);
    let lock = sys.create_mutex();
    let barrier = sys.create_barrier(2);
    let report = sys.run(2, |ctx| {
        // Warm both caches so steady state is measured.
        let _ = ctx.read_u64(word);
        ctx.barrier(barrier);
        for round in 0..20u64 {
            ctx.lock(lock);
            let v = ctx.read_u64(word);
            ctx.write_u64(word, v + 1);
            ctx.unlock(lock);
            ctx.barrier(barrier);
            assert_eq!(ctx.read_u64(word), (round + 1) * 2, "tid {}", ctx.tid());
        }
    });
    // The word's page is only ever written in consistency regions: no page
    // refetch should have happened after warm-up.
    assert_eq!(
        report.total_of(|t| t.page_refetches),
        0,
        "fine-grain updates must be applied in place"
    );
    let mut buf = [0u8; 8];
    sys.read_global(word, &mut buf);
    assert_eq!(u64::from_le_bytes(buf), 40);
}

#[test]
fn ordinary_writes_invalidate_and_refetch() {
    // The counterpart: the same ping-pong with the shared word written in
    // an ORDINARY region (outside any lock), alternating by barrier parity.
    // Page-granularity notices force invalidation + refetch on the reader.
    let sys = Samhita::new(small());
    let word = sys.alloc_global(8);
    let barrier = sys.create_barrier(2);
    let report = sys.run(2, |ctx| {
        let _ = ctx.read_u64(word);
        ctx.barrier(barrier);
        for round in 0..10u64 {
            if round % 2 == ctx.tid() as u64 % 2 {
                ctx.write_u64(word, round + 1);
            }
            ctx.barrier(barrier);
            assert_eq!(ctx.read_u64(word), round + 1);
            ctx.barrier(barrier);
        }
    });
    assert!(
        report.total_of(|t| t.page_refetches) > 0,
        "ordinary-region sharing must show up as refetch traffic"
    );
    assert!(report.total_of(|t| t.invalidations) > 0);
}

#[test]
fn mixed_region_writes_do_not_double_propagate_end_to_end() {
    // Thread 0 writes word A ordinarily and word B under the lock, on the
    // SAME page; thread 1 then updates B under the lock. Thread 0's later
    // barrier flush (the ordinary diff) must not resurrect its old B.
    let sys = Samhita::new(small());
    let page = sys.alloc_global(sys.config().page_size as u64);
    let a = page;
    let b = page + 64;
    let lock = sys.create_mutex();
    let barrier = sys.create_barrier(2);
    sys.run(2, |ctx| {
        if ctx.tid() == 0 {
            ctx.write_u64(a, 11); // ordinary: twin created
            ctx.lock(lock);
            ctx.write_u64(b, 1); // fine-grain, written through the twin
            ctx.unlock(lock);
        }
        ctx.barrier(barrier); // t0's diff (A only) + fine update (B=1) land
        if ctx.tid() == 1 {
            ctx.lock(lock);
            assert_eq!(ctx.read_u64(b), 1);
            ctx.write_u64(b, 2);
            ctx.unlock(lock);
        }
        ctx.barrier(barrier);
        assert_eq!(ctx.read_u64(a), 11);
        assert_eq!(ctx.read_u64(b), 2, "old B must not be resurrected by the diff");
    });
}

#[test]
fn eviction_pressure_preserves_correctness() {
    // A cache of 4 lines (8 tiny pages) forced to stream through 64 pages
    // of writes: every line is evicted many times; the data must still be
    // exact at the home afterwards.
    let cfg = SamhitaConfig { cache_capacity_lines: 4, ..small() };
    let page = cfg.page_size as u64;
    let sys = Samhita::new(cfg);
    let span = 64 * page;
    let addr = sys.alloc_global(span);
    let report = sys.run(1, |ctx| {
        for p in 0..64u64 {
            ctx.write_u64(addr + p * page, p + 1000);
        }
    });
    assert!(report.threads[0].evictions > 0, "the workload must thrash the cache");
    for p in 0..64u64 {
        let mut buf = [0u8; 8];
        sys.read_global(addr + p * page, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), p + 1000, "page {p} lost its eviction flush");
    }
}

#[test]
fn whole_page_ablation_variant_is_still_correct() {
    let cfg = SamhitaConfig { consistency: ConsistencyVariant::WholePage, ..small() };
    let sys = Samhita::new(cfg);
    let counter = sys.alloc_global(8);
    let lock = sys.create_mutex();
    sys.run(4, |ctx| {
        for _ in 0..25 {
            ctx.lock(lock);
            let v = ctx.read_u64(counter);
            ctx.write_u64(counter, v + 1);
            ctx.unlock(lock);
        }
    });
    let mut buf = [0u8; 8];
    sys.read_global(counter, &mut buf);
    assert_eq!(u64::from_le_bytes(buf), 100);
}

#[test]
fn manager_bypass_variant_is_still_correct() {
    let cfg = SamhitaConfig { topology: TopologyKind::SingleNode, manager_bypass: true, ..small() };
    let sys = Samhita::new(cfg);
    let counter = sys.alloc_global(8);
    let data = sys.alloc_global(4096);
    let lock = sys.create_mutex();
    let barrier = sys.create_barrier(4);
    sys.run(4, |ctx| {
        // Ordinary writes to disjoint ranges + lock-protected counter.
        let mine = data + ctx.tid() as u64 * 1024;
        for i in 0..128u64 {
            ctx.write_u64(mine + i * 8, i);
        }
        ctx.lock(lock);
        let v = ctx.read_u64(counter);
        ctx.write_u64(counter, v + 1);
        ctx.unlock(lock);
        ctx.barrier(barrier);
        assert_eq!(ctx.read_u64(counter), 4);
        // Everyone sees everyone's ordinary writes too.
        for t in 0..4u64 {
            assert_eq!(ctx.read_u64(data + t * 1024 + 8 * 100), 100);
        }
    });
}

#[test]
fn lru_eviction_policy_is_correct_too() {
    let cfg = SamhitaConfig { cache_capacity_lines: 4, eviction: EvictionPolicy::Lru, ..small() };
    let page = cfg.page_size as u64;
    let sys = Samhita::new(cfg);
    let addr = sys.alloc_global(32 * page);
    sys.run(2, |ctx| {
        let base = addr + ctx.tid() as u64 * 16 * page;
        for p in 0..16u64 {
            ctx.write_u64(base + p * page, p);
        }
        for p in 0..16u64 {
            assert_eq!(ctx.read_u64(base + p * page), p);
        }
    });
}

#[test]
fn condvar_handoff_with_waiting_consumer() {
    // Consumer reaches the wait first (physical sleep on the producer), the
    // producer's signal re-grants the lock, and the consistency machinery
    // delivers the produced value.
    let sys = Samhita::new(small());
    let flag = sys.alloc_global(8);
    let value = sys.alloc_global(8);
    let lock = sys.create_mutex();
    let cond = sys.create_cond();
    let stats = sys.run(2, |ctx| {
        if ctx.tid() == 0 {
            // Consumer.
            ctx.lock(lock);
            while ctx.read_u64(flag) == 0 {
                ctx.cond_wait(cond, lock);
            }
            assert_eq!(ctx.read_u64(value), 99);
            ctx.unlock(lock);
        } else {
            // Producer, delayed so the consumer actually waits: the compute
            // charge pushes its lock acquisition later in *virtual* time
            // (what the deterministic runtime orders by), and the physical
            // sleep does the same in wall time for the OS runtime.
            ctx.compute(100_000);
            std::thread::sleep(std::time::Duration::from_millis(20));
            ctx.lock(lock);
            ctx.write_u64(value, 99);
            ctx.write_u64(flag, 1);
            ctx.cond_signal(cond);
            ctx.unlock(lock);
        }
    });
    assert_eq!(stats.threads.len(), 2);
    let system_stats = sys.shutdown();
    assert!(system_stats.manager.cond_waits >= 1, "the consumer must actually have waited");
}
