//! End-to-end checks of the profiling subsystem: hotspot attribution to
//! allocation sites, machine-readable bench reports, and the bench-diff
//! regression gate against the committed baselines.

use samhita_bench::{compare, BenchReport};
use samhita_repro::core::{Region, SamhitaConfig};
use samhita_repro::kernels::{run_micro, AllocMode, MicroParams};
use samhita_repro::rt::SamhitaRt;

/// The acceptance bar for the false-sharing profiler: in the micro
/// benchmark's `global` mode, the pages that ping-pong between writers all
/// live in the shared zone, so the hotspot report must attribute (nearly)
/// every refetch to shared-allocation pages and rank one of them first.
#[test]
fn hotspot_report_names_the_false_shared_pages() {
    let rt = SamhitaRt::new(SamhitaConfig::default());
    let report = run_micro(&rt, &MicroParams::paper(2, 2, AllocMode::Global, 4)).report;
    let hot = report.hotspots();
    let total_refetches = hot.total_of(|c| c.refetches);
    assert!(total_refetches > 0, "global mode must false-share");

    let shared_refetches: u64 = hot
        .iter()
        .filter(|(page, _)| matches!(report.site_of_page(*page), Some(Region::Shared)))
        .map(|(_, c)| c.refetches)
        .sum();
    assert!(
        shared_refetches * 10 >= total_refetches * 9,
        "only {shared_refetches}/{total_refetches} refetches attributed to shared pages"
    );

    // The top churn page is one of the shared ping-pong pages, and the
    // report can name its site.
    let top = hot.top_churn(3);
    assert!(!top.is_empty());
    for (page, counters) in &top {
        assert_eq!(report.site_label(*page), "shared");
        assert!(counters.churn() > 0);
    }

    // Contrast: arena-only allocation has no cross-thread refetches at all.
    let rt = SamhitaRt::new(SamhitaConfig::default());
    let local = run_micro(&rt, &MicroParams::paper(2, 2, AllocMode::Local, 4)).report;
    let arena_pages_refetched: u64 = local
        .hotspots()
        .iter()
        .filter(|(page, _)| matches!(local.site_of_page(*page), Some(Region::Arena(_))))
        .map(|(_, c)| c.refetches)
        .sum();
    assert_eq!(arena_pages_refetched, 0, "private arenas cannot false-share");
}

#[test]
fn bench_report_from_run_round_trips_with_sane_utilization() {
    let cfg = SamhitaConfig { tracing: true, ..SamhitaConfig::small_for_tests() };
    let rt = SamhitaRt::new(cfg.clone());
    let report = run_micro(&rt, &MicroParams::paper(2, 2, AllocMode::Global, 2)).report;
    let trace = rt.take_trace().expect("tracing enabled");
    let bench = BenchReport::from_run("micro", "integration-test", &cfg, 2, &report, Some(&trace));

    assert!(bench.makespan_ns > 0);
    assert!(bench.sync_fraction > 0.0 && bench.sync_fraction < 1.0);
    assert!(bench.mgr_utilization > 0.0 && bench.mgr_utilization < 1.0);
    assert_eq!(bench.server_utilization.len(), 1);
    assert!(bench.server_utilization[0] > 0.0 && bench.server_utilization[0] < 1.0);
    let timeline = bench.timeline.expect("trace given, timeline present");
    assert!(timeline.buckets > 0 && timeline.fabric_bytes > 0);
    assert!(!bench.hotspots.is_empty(), "a sharing run has hotspot pages");
    assert!(bench.hotspots.iter().all(|h| !h.site.is_empty()));

    let parsed = BenchReport::from_json(&bench.to_json()).expect("round trip");
    assert_eq!(parsed, bench);

    // Without a trace the timeline section is absent but the report stands.
    let bare = BenchReport::from_run("micro", "integration-test", &cfg, 2, &report, None);
    assert!(bare.timeline.is_none());
    assert_eq!(BenchReport::from_json(&bare.to_json()).expect("round trip"), bare);
}

/// The committed baselines are real, parseable reports, and the gate logic
/// run against them behaves exactly as CI relies on: identical reports
/// pass, a synthetic 10% makespan regression fails at the 5% tolerance.
#[test]
fn committed_baselines_gate_synthetic_regressions() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/results/baselines");
    let mut checked = 0;
    for kernel in ["micro", "jacobi", "md"] {
        for p in [1u32, 8, 64] {
            let path = format!("{dir}/BENCH_{kernel}_p{p}.json");
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("baseline {path} unreadable: {e}"));
            let base = BenchReport::from_json(&text)
                .unwrap_or_else(|e| panic!("baseline {path} unparsable: {e}"));
            assert_eq!(base.kernel, kernel);
            assert_eq!(base.threads, p, "{path} carries its thread count");
            assert!(base.makespan_ns > 0);
            assert!(base.timeline.is_some(), "baselines are generated with tracing on");

            let same = compare(&base, &base, 0.05);
            assert!(same.passed(), "self-comparison regressed: {:?}", same.regressions);

            let worse = BenchReport { makespan_ns: base.makespan_ns * 11 / 10, ..base.clone() };
            let gate = compare(&base, &worse, 0.05);
            assert!(!gate.passed(), "a 10% makespan regression must fail the 5% gate");
            assert!(gate.regressions.iter().any(|r| r.contains("makespan")));
            checked += 1;
        }
    }
    assert_eq!(checked, 9);
}
