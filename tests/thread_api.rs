//! Direct coverage of the `ThreadCtx` programming interface: typed and
//! byte-level accessors, page/line-spanning operations, region nesting,
//! timing accounting — the API surface a downstream application would
//! program against.

use samhita_repro::core::{Samhita, SamhitaConfig};

fn system() -> Samhita {
    Samhita::new(SamhitaConfig::small_for_tests()) // 256-byte pages, 2-page lines
}

#[test]
fn fresh_global_memory_reads_as_zero() {
    let sys = system();
    let addr = sys.alloc_global(4096);
    sys.run(1, |ctx| {
        assert_eq!(ctx.read_u64(addr), 0);
        assert_eq!(ctx.read_f64(addr + 1000), 0.0);
        let mut buf = vec![0xFFu8; 100];
        ctx.read_bytes(addr + 200, &mut buf);
        assert!(buf.iter().all(|&b| b == 0), "first touch must be zero-filled");
    });
}

#[test]
fn byte_writes_spanning_pages_and_lines() {
    let sys = system();
    let page = sys.config().page_size as u64;
    let line = sys.config().line_bytes() as u64;
    let addr = sys.alloc_global(8 * line);
    sys.run(1, move |ctx| {
        // A write crossing a page boundary within a line.
        let pattern: Vec<u8> = (0..100u8).collect();
        ctx.write_bytes(addr + page - 50, &pattern);
        let mut back = vec![0u8; 100];
        ctx.read_bytes(addr + page - 50, &mut back);
        assert_eq!(back, pattern);
        // A write crossing a line boundary.
        ctx.write_bytes(addr + line - 7, &pattern);
        let mut back = vec![0u8; 100];
        ctx.read_bytes(addr + line - 7, &mut back);
        assert_eq!(back, pattern);
        // A write spanning several whole lines.
        let big: Vec<u8> = (0..3 * line).map(|i| (i % 251) as u8).collect();
        ctx.write_bytes(addr + 3, &big);
        let mut back = vec![0u8; big.len()];
        ctx.read_bytes(addr + 3, &mut back);
        assert_eq!(back, big);
    });
}

#[test]
fn f64_slice_roundtrip_and_update() {
    let sys = system();
    let addr = sys.alloc_global(512 * 8);
    sys.run(1, move |ctx| {
        let values: Vec<f64> = (0..512).map(|i| (i as f64).sqrt()).collect();
        ctx.write_f64_slice(addr, &values);
        let mut back = vec![0.0; 512];
        ctx.read_f64_slice(addr, &mut back);
        assert_eq!(back, values);
        // In-place bulk update across many pages.
        ctx.update_f64s(addr, 512, |i, x| x + i as f64);
        for (i, want) in values.iter().enumerate() {
            assert_eq!(ctx.read_f64(addr + i as u64 * 8), want + i as f64);
        }
    });
}

#[test]
fn nested_locks_keep_fine_grain_tracking() {
    let sys = system();
    let a = sys.alloc_global(8);
    let b = sys.alloc_global(8);
    let outer = sys.create_mutex();
    let inner = sys.create_mutex();
    sys.run(2, move |ctx| {
        for _ in 0..10 {
            ctx.lock(outer);
            let va = ctx.read_u64(a);
            ctx.lock(inner);
            let vb = ctx.read_u64(b);
            ctx.write_u64(b, vb + 1);
            ctx.unlock(inner);
            ctx.write_u64(a, va + 1);
            ctx.unlock(outer);
        }
    });
    let mut buf = [0u8; 8];
    sys.read_global(a, &mut buf);
    assert_eq!(u64::from_le_bytes(buf), 20);
    sys.read_global(b, &mut buf);
    assert_eq!(u64::from_le_bytes(buf), 20);
}

#[test]
fn clock_and_sync_time_accounting_is_monotone_and_split() {
    let sys = system();
    let barrier = sys.create_barrier(2);
    let lock = sys.create_mutex();
    sys.run(2, move |ctx| {
        let t0 = ctx.now();
        ctx.compute(100_000);
        let t1 = ctx.now();
        assert!(t1 > t0, "compute must advance the clock");
        assert_eq!(ctx.sync_time().as_ns(), 0, "no sync yet");
        ctx.lock(lock);
        ctx.unlock(lock);
        ctx.barrier(barrier);
        let sync = ctx.sync_time();
        assert!(sync.as_ns() > 0, "sync ops must charge the sync bucket");
        assert!(ctx.now() >= t1 + sync, "clock includes both buckets");
    });
}

#[test]
fn start_timing_excludes_earlier_work_from_the_report() {
    let sys = system();
    let report_with_warmup = {
        let sys = system();
        sys.run(1, |ctx| {
            ctx.compute(1_000_000);
            ctx.compute(1_000);
        })
    };
    let report_marked = sys.run(1, |ctx| {
        ctx.compute(1_000_000);
        ctx.start_timing();
        ctx.compute(1_000);
    });
    assert!(report_marked.makespan.as_ns() < 1_000 * 2);
    assert!(report_with_warmup.makespan.as_ns() > 300_000);
}

#[test]
fn stats_counters_reflect_protocol_activity() {
    let sys = system();
    let line = sys.config().line_bytes() as u64;
    let addr = sys.alloc_global(4 * line);
    let barrier = sys.create_barrier(2);
    let report = sys.run(2, move |ctx| {
        // Both threads write the same page region (false sharing on word
        // granularity is avoided by disjoint offsets).
        ctx.write_u64(addr + ctx.tid() as u64 * 8, 1);
        ctx.barrier(barrier);
        let _ = ctx.read_u64(addr + (1 - ctx.tid()) as u64 * 8);
        ctx.barrier(barrier);
    });
    assert!(report.total_of(|t| t.line_misses) >= 2, "each thread cold-faults the line");
    assert!(report.total_of(|t| t.twins_created) >= 2, "ordinary writes twin their pages");
    assert!(report.total_of(|t| t.diff_bytes_flushed) >= 16, "both words travel home");
    assert!(report.total_of(|t| t.invalidations) >= 2, "shared page invalidated on both sides");
    assert!(report.total_of(|t| t.barriers) == 4);
    assert!(report.fabric.total_msgs() > 0);
}

#[test]
fn unaligned_mixed_size_accesses() {
    let sys = system();
    let addr = sys.alloc_global(1024);
    sys.run(1, move |ctx| {
        ctx.write_bytes(addr + 3, &[0xAB]);
        ctx.write_bytes(addr + 4, &[0xCD, 0xEF]);
        let mut b = [0u8; 3];
        ctx.read_bytes(addr + 3, &mut b);
        assert_eq!(b, [0xAB, 0xCD, 0xEF]);
        // u64 spanning those bytes (little endian).
        let v = ctx.read_u64(addr);
        assert_eq!(v.to_le_bytes()[3], 0xAB);
        assert_eq!(v.to_le_bytes()[4], 0xCD);
    });
}

#[test]
fn empty_and_single_element_bulk_ops() {
    let sys = system();
    let addr = sys.alloc_global(64);
    sys.run(1, move |ctx| {
        ctx.write_f64_slice(addr, &[]);
        let mut empty: [f64; 0] = [];
        ctx.read_f64_slice(addr, &mut empty);
        ctx.update_f64s(addr, 0, |_, x| x);
        ctx.write_f64_slice(addr, &[42.0]);
        let mut one = [0.0];
        ctx.read_f64_slice(addr, &mut one);
        assert_eq!(one, [42.0]);
    });
}

#[test]
fn create_lock_from_a_running_thread() {
    let sys = system();
    let mailbox = sys.alloc_global(8);
    let barrier = sys.create_barrier(2);
    let counter = sys.alloc_global(8);
    sys.run(2, move |ctx| {
        if ctx.tid() == 0 {
            let lock = ctx.create_lock();
            ctx.write_u64(mailbox, lock as u64 + 1);
        }
        ctx.barrier(barrier);
        let lock = (ctx.read_u64(mailbox) - 1) as u32;
        for _ in 0..5 {
            ctx.lock(lock);
            let v = ctx.read_u64(counter);
            ctx.write_u64(counter, v + 1);
            ctx.unlock(lock);
        }
    });
    let mut buf = [0u8; 8];
    sys.read_global(counter, &mut buf);
    assert_eq!(u64::from_le_bytes(buf), 10);
}
