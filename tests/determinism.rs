//! Determinism and stability of the virtual-time simulation.
//!
//! Under the deterministic virtual-time scheduler (the default runtime,
//! DESIGN.md §12), runs at *every* thread count are bit-reproducible:
//! identical values, virtual times, and protocol event timelines run to
//! run. The wall-clock tests additionally pin that physical scheduling
//! noise cannot leak into virtual time at all.

use samhita_bench::BenchReport;
use samhita_repro::core::{Samhita, SamhitaConfig};
use samhita_repro::kernels::{
    run_jacobi, run_md, run_micro, AllocMode, JacobiParams, MdParams, MicroParams,
};
use samhita_repro::rt::SamhitaRt;

#[test]
fn single_thread_virtual_times_are_bit_identical_across_runs() {
    let run = || {
        let p = MicroParams {
            n_outer: 3,
            m_inner: 2,
            s_rows: 2,
            b_cols: 32,
            mode: AllocMode::Local,
            threads: 1,
        };
        let rt = SamhitaRt::new(SamhitaConfig::small_for_tests());
        let r = run_micro(&rt, &p);
        (r.gsum, r.report.threads[0].total, r.report.threads[0].sync)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "P=1 simulation must be exactly reproducible");
}

#[test]
fn multi_thread_values_and_times_are_bit_identical() {
    let run = || {
        let p = MicroParams {
            n_outer: 12,
            m_inner: 4,
            s_rows: 2,
            b_cols: 32,
            mode: AllocMode::Global,
            threads: 4,
        };
        let rt = SamhitaRt::new(SamhitaConfig::small_for_tests());
        let r = run_micro(&rt, &p);
        (r.gsum.to_bits(), r.report.makespan.as_ns())
    };
    // Under the deterministic scheduler P=4 is as reproducible as P=1:
    // the same lock acquisition order, the same addition order, the same
    // virtual makespan, bit for bit.
    assert_eq!(run(), run(), "P=4 must be bit-identical under the deterministic runtime");
}

#[test]
fn jacobi_and_md_grids_are_identical_across_repeated_parallel_runs() {
    let jac = |threads| {
        run_jacobi(
            &SamhitaRt::new(SamhitaConfig::small_for_tests()),
            &JacobiParams { n: 12, iters: 4, threads },
        )
        .grid
    };
    assert_eq!(jac(3), jac(3));
    assert_eq!(jac(1), jac(4), "thread count must not change the numerics");

    let md = |threads| {
        run_md(
            &SamhitaRt::new(SamhitaConfig::small_for_tests()),
            &MdParams { n: 24, steps: 3, dt: 1e-3, threads, seed: 5 },
        )
        .positions
    };
    assert_eq!(md(2), md(2));
    assert_eq!(md(1), md(4));
}

/// The PR-6 acceptance bar: two identical Jacobi invocations at P=64
/// produce byte-identical BenchReport JSON and equal trace checksums, and
/// the traced runs satisfy every RegC protocol invariant.
#[test]
fn jacobi_p64_reports_are_byte_identical_and_pass_invariants() {
    let observe = || {
        let cfg = SamhitaConfig { tracing: true, ..SamhitaConfig::default() };
        let p = JacobiParams { n: 64, iters: 4, threads: 64 };
        let rt = SamhitaRt::new(cfg.clone());
        let r = run_jacobi(&rt, &p);
        let trace = rt.take_trace().expect("tracing was enabled");
        trace.check_invariants().expect("RegC invariants must hold at P=64");
        let bench = BenchReport::from_run(
            "jacobi",
            &format!("{p:?}"),
            &cfg,
            p.threads,
            &r.report,
            Some(&trace),
        );
        (bench.to_json(), trace.checksum())
    };
    let (json_a, sum_a) = observe();
    let (json_b, sum_b) = observe();
    assert_eq!(json_a, json_b, "P=64 BenchReport JSON must be byte-identical");
    assert_eq!(sum_a, sum_b, "P=64 trace checksums must match");
}

/// 256 simulated cores: the scheduler's scaling smoke. Values are checked
/// against the serial reference and the virtual timeline reproduces
/// bit-identically.
#[test]
fn jacobi_256_core_smoke_is_reproducible() {
    let run = || {
        let cfg = SamhitaConfig { max_threads: 256, ..SamhitaConfig::default() };
        let p = JacobiParams { n: 256, iters: 2, threads: 256 };
        let r = run_jacobi(&SamhitaRt::new(cfg), &p);
        (r.grid, r.report.makespan.as_ns())
    };
    let (grid_a, t_a) = run();
    let (grid_b, t_b) = run();
    assert_eq!(grid_a, grid_b, "256-core grids must match");
    assert_eq!(t_a, t_b, "256-core makespans must be bit-identical");
}

#[test]
fn single_thread_virtual_time_is_independent_of_wall_clock() {
    // Inject a real-time stall: the virtual clock comes from the cost
    // model, not the host, so a single-threaded run is bit-identical.
    let run = |stall: bool| {
        let sys = Samhita::new(SamhitaConfig::small_for_tests());
        let addr = sys.alloc_global(4096);
        let report = sys.run(1, move |ctx| {
            for i in 0..8u64 {
                if stall && i == 4 {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                ctx.write_u64(addr + i * 512, i);
                ctx.compute(10_000);
            }
        });
        report.makespan
    };
    assert_eq!(run(false), run(true), "wall-clock stalls must not leak into virtual time");
}

#[test]
fn wall_clock_skew_perturbs_multithread_times_only_within_the_documented_bound() {
    // With several threads sharing a memory server, wall-clock reordering
    // can shift virtual queueing (the conservative-approximate model of
    // DESIGN.md §2: a server's virtual clock never rewinds). Values must
    // still be exact; the makespan perturbation is bounded by roughly one
    // thread's pre-barrier span, not proportional to the 30 ms stall.
    let run = |stall: bool| {
        let sys = Samhita::new(SamhitaConfig::small_for_tests());
        let barrier = sys.create_barrier(2);
        let addr = sys.alloc_global(64);
        let report = sys.run(2, move |ctx| {
            if stall && ctx.tid() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            ctx.write_u64(addr + ctx.tid() as u64 * 8, 7);
            ctx.compute(10_000);
            ctx.barrier(barrier);
            assert_eq!(ctx.read_u64(addr), 7);
            assert_eq!(ctx.read_u64(addr + 8), 7);
        });
        report.makespan
    };
    let base = run(false).as_ns() as i64;
    let skewed = run(true).as_ns() as i64;
    assert!(
        (base - skewed).abs() < 50_000,
        "perturbation must stay micro-scale, not stall-scale: {base} vs {skewed}"
    );
}
