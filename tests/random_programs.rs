//! Randomized program equivalence: generated barrier-phased parallel
//! programs executed on the full DSM must leave the shared memory in
//! exactly the state a sequential interpretation predicts.
//!
//! The generator, interpreter, and DSM runner live in `tests/common` (see
//! its module docs for the program shape) and are shared with the
//! determinism-at-scale suite.

mod common;

use common::{generate, interpret, run_on_fresh_dsm};
use samhita_repro::core::SamhitaConfig;

const THREADS: u32 = 4;
const PHASES: usize = 6;

#[test]
fn random_programs_match_sequential_interpretation() {
    for seed in 0..12u64 {
        let phases = generate(seed, THREADS, PHASES);
        let (want_slots, want_accs) = interpret(&phases, THREADS);
        let (got_slots, got_accs) =
            run_on_fresh_dsm(SamhitaConfig::small_for_tests(), &phases, THREADS);
        assert_eq!(got_slots, want_slots, "seed {seed}: slot state diverged");
        assert_eq!(got_accs, want_accs, "seed {seed}: accumulators diverged");
    }
}

#[test]
fn random_programs_match_under_stressful_configurations() {
    // Tiny cache (eviction pressure) and no prefetch, then the whole-page
    // consistency variant: every seed must still be exact.
    let configs = [
        SamhitaConfig {
            cache_capacity_lines: 2,
            prefetch: false,
            ..SamhitaConfig::small_for_tests()
        },
        SamhitaConfig {
            consistency: samhita_repro::core::ConsistencyVariant::WholePage,
            ..SamhitaConfig::small_for_tests()
        },
    ];
    for (ci, cfg) in configs.into_iter().enumerate() {
        for seed in 100..106u64 {
            let phases = generate(seed, THREADS, PHASES);
            let (want_slots, want_accs) = interpret(&phases, THREADS);
            let (got_slots, got_accs) = run_on_fresh_dsm(cfg.clone(), &phases, THREADS);
            assert_eq!(got_slots, want_slots, "config {ci} seed {seed}: slots diverged");
            assert_eq!(got_accs, want_accs, "config {ci} seed {seed}: accumulators diverged");
        }
    }
}
