//! Randomized program equivalence: generated barrier-phased parallel
//! programs executed on the full DSM must leave the shared memory in
//! exactly the state a sequential interpretation predicts.
//!
//! Program shape (per seed): `PHASES` rounds, each consisting of
//! per-thread ordinary writes to thread-owned slots, a round of
//! lock-protected read-modify-writes on shared accumulators, and a barrier.
//! Ownership makes the ordinary writes race-free; the lock serializes the
//! accumulator updates; commutative updates keep the expected state
//! independent of acquisition order — so the final memory is fully
//! predictable and every protocol path (twins, diffs, fine-grain updates,
//! notices, invalidations, refetches) is exercised on the way.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samhita_repro::core::{Samhita, SamhitaConfig};

const THREADS: u32 = 4;
const SLOTS_PER_THREAD: u64 = 24;
const ACCUMULATORS: u64 = 3;
const PHASES: usize = 6;

#[derive(Clone)]
struct Phase {
    /// Per thread: (slot index within its block, value) ordinary writes.
    writes: Vec<Vec<(u64, u64)>>,
    /// Per thread: (accumulator, delta) lock-protected updates.
    adds: Vec<Vec<(u64, u64)>>,
}

fn generate(seed: u64) -> Vec<Phase> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..PHASES)
        .map(|_| Phase {
            writes: (0..THREADS)
                .map(|_| {
                    (0..rng.gen_range(0..12))
                        .map(|_| (rng.gen_range(0..SLOTS_PER_THREAD), rng.gen::<u64>() >> 1))
                        .collect()
                })
                .collect(),
            adds: (0..THREADS)
                .map(|_| {
                    (0..rng.gen_range(0..4))
                        .map(|_| (rng.gen_range(0..ACCUMULATORS), rng.gen_range(1..1000)))
                        .collect()
                })
                .collect(),
        })
        .collect()
}

/// Sequential interpretation: the final expected memory.
fn interpret(phases: &[Phase]) -> (Vec<u64>, Vec<u64>) {
    let mut slots = vec![0u64; (THREADS as u64 * SLOTS_PER_THREAD) as usize];
    let mut accs = vec![0u64; ACCUMULATORS as usize];
    for phase in phases {
        for (tid, writes) in phase.writes.iter().enumerate() {
            for &(slot, value) in writes {
                slots[tid * SLOTS_PER_THREAD as usize + slot as usize] = value;
            }
        }
        for adds in &phase.adds {
            for &(acc, delta) in adds {
                accs[acc as usize] += delta;
            }
        }
    }
    (slots, accs)
}

fn run_on_dsm(cfg: SamhitaConfig, phases: &[Phase]) -> (Vec<u64>, Vec<u64>) {
    let sys = Samhita::new(cfg);
    let slots = sys.alloc_global(THREADS as u64 * SLOTS_PER_THREAD * 8);
    let accs = sys.alloc_global(ACCUMULATORS * 8);
    let lock = sys.create_mutex();
    let barrier = sys.create_barrier(THREADS);
    let phases = phases.to_vec();
    sys.run(THREADS, move |ctx| {
        let tid = ctx.tid() as usize;
        let base = slots + ctx.tid() as u64 * SLOTS_PER_THREAD * 8;
        for phase in &phases {
            for &(slot, value) in &phase.writes[tid] {
                ctx.write_u64(base + slot * 8, value);
            }
            ctx.lock(lock);
            for &(acc, delta) in &phase.adds[tid] {
                let v = ctx.read_u64(accs + acc * 8);
                ctx.write_u64(accs + acc * 8, v + delta);
            }
            ctx.unlock(lock);
            ctx.barrier(barrier);
            // Mid-program check: accumulators are already coherent here,
            // but their values depend on phase interleaving only through
            // the (commutative) sums — spot-check reads do not disturb
            // the protocol.
            let _ = ctx.read_u64(accs);
        }
    });
    let mut slot_bytes = vec![0u8; (THREADS as u64 * SLOTS_PER_THREAD * 8) as usize];
    sys.read_global(slots, &mut slot_bytes);
    let got_slots =
        slot_bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
    let mut acc_bytes = vec![0u8; (ACCUMULATORS * 8) as usize];
    sys.read_global(accs, &mut acc_bytes);
    let got_accs =
        acc_bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
    (got_slots, got_accs)
}

#[test]
fn random_programs_match_sequential_interpretation() {
    for seed in 0..12u64 {
        let phases = generate(seed);
        let (want_slots, want_accs) = interpret(&phases);
        let (got_slots, got_accs) = run_on_dsm(SamhitaConfig::small_for_tests(), &phases);
        assert_eq!(got_slots, want_slots, "seed {seed}: slot state diverged");
        assert_eq!(got_accs, want_accs, "seed {seed}: accumulators diverged");
    }
}

#[test]
fn random_programs_match_under_stressful_configurations() {
    // Tiny cache (eviction pressure) and no prefetch, then the whole-page
    // consistency variant: every seed must still be exact.
    let configs = [
        SamhitaConfig {
            cache_capacity_lines: 2,
            prefetch: false,
            ..SamhitaConfig::small_for_tests()
        },
        SamhitaConfig {
            consistency: samhita_repro::core::ConsistencyVariant::WholePage,
            ..SamhitaConfig::small_for_tests()
        },
    ];
    for (ci, cfg) in configs.into_iter().enumerate() {
        for seed in 100..106u64 {
            let phases = generate(seed);
            let (want_slots, want_accs) = interpret(&phases);
            let (got_slots, got_accs) = run_on_dsm(cfg.clone(), &phases);
            assert_eq!(got_slots, want_slots, "config {ci} seed {seed}: slots diverged");
            assert_eq!(got_accs, want_accs, "config {ci} seed {seed}: accumulators diverged");
        }
    }
}
