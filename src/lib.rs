//! # samhita-repro
//!
//! Umbrella crate for the Samhita/RegC reproduction: re-exports the public
//! surfaces of every workspace crate so the examples and integration tests can
//! use a single dependency, mirroring how a downstream user would consume the
//! system.
//!
//! The implementation reproduces *"Towards Virtual Shared Memory for
//! Non-Cache-Coherent Multicore Systems"* (Ramesh, Ribbens, Varadarajan;
//! IPDPS Workshops 2013): a software distributed-shared-memory system
//! ("Samhita") with the *regional consistency* (RegC) memory model, evaluated
//! over a virtual-time interconnect simulator standing in for the paper's
//! InfiniBand cluster / Xeon Phi hardware.
//!
//! Start with [`core::Samhita`] for the DSM runtime, [`rt`] for the
//! pthreads-vs-Samhita kernel façade, and [`kernels`] for the paper's three
//! workloads.

pub use samhita_core as core;
pub use samhita_kernels as kernels;
pub use samhita_mem as mem;
pub use samhita_prof as prof;
pub use samhita_regc as regc;
pub use samhita_rt as rt;
pub use samhita_scl as scl;
pub use samhita_trace as trace;
